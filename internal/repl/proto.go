// Package repl is the replication subsystem: a primary streams its
// emitted edge sequence — full-sync of chunk sidecars and the WAL
// suffix on attach, then a live tail of framed batches — over TCP to
// replicas that rebuild byte-identical sketch state through their own
// stream.Ingester and serve read traffic from their own checkpoints. On
// primary loss a Controller promotes the most-caught-up replica, which
// fences the old primary by advancing the WAL epoch and resumes intake
// at the replicated position.
//
// The wire protocol IREP0001 is normatively specified in DESIGN.md.
// Both sides open with the 8-byte magic "IREP0001"; every message after
// that is one frame, CRC-framed exactly like a WAL record:
//
//	uint32 LE payload length | uint32 LE CRC-32C of payload | payload
//
// payload[0] is the frame type; the body is uvarint/varint fields in
// fixed order (see the encode/decode pairs below). The edge payload of
// an Edges frame reuses the WAL record encoding byte for byte, so a
// replica applies exactly the batches the primary logged.
//
// Identity argument: the emitted sequence has strictly increasing
// timestamps and chunk boundaries do not affect fold output (the
// internal/stream recovery property), so a replica pushing the
// replicated sequence through its own zero-slack Ingester reaches
// checkpoints byte-identical to the primary's over the same prefix.
package repl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// protoMagic opens every connection, in both directions.
const protoMagic = "IREP0001"

// protoVersion is carried in Hello and Meta; a peer speaking a version
// this code does not know is rejected.
const protoVersion = 1

// Frame types.
const (
	frHello     byte = 1 // replica → primary: who I am, where I am
	frMeta      byte = 2 // primary → replica: sync plan for this session
	frChunk     byte = 3 // primary → replica: one raw chunk sidecar file
	frEdges     byte = 4 // primary → replica: one WAL-encoded edge batch
	frHeartbeat byte = 5 // primary → replica: liveness + position
	frAck       byte = 6 // replica → primary: applied position
	frError     byte = 7 // primary → replica: refusal, with code
)

// Error codes carried by frError.
const (
	// ErrCodeResync: the replica's position or epoch cannot be served
	// from the primary's retained state; it must discard its directory
	// and re-attach fresh.
	ErrCodeResync uint64 = 1
	// ErrCodeFenced: the replica presented a NEWER epoch than the
	// primary holds — the primary is stale and must stop acting as one.
	ErrCodeFenced uint64 = 2
	// ErrCodeConfig: omega/precision mismatch; no amount of syncing fixes
	// a differently-configured replica.
	ErrCodeConfig uint64 = 3
)

var replCRC = crc32.MakeTable(crc32.Castagnoli)

const (
	frameHeader = 8 // length + checksum
	// maxFrameBytes caps a frame payload, matching the WAL's record cap:
	// anything longer is a torn or hostile frame, not a real message.
	maxFrameBytes = 64 << 20
)

// writeFrame writes one CRC frame. The caller flushes the writer.
func writeFrame(w *bufio.Writer, payload []byte) error {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, replCRC))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one CRC frame, failing on damage — a torn or
// corrupted frame ends the session (the position handshake on
// re-attach resumes cleanly), it is never "skipped".
func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	plen := binary.LittleEndian.Uint32(hdr[:])
	sum := binary.LittleEndian.Uint32(hdr[4:])
	if plen > maxFrameBytes {
		return nil, fmt.Errorf("repl: implausible frame length %d", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, replCRC) != sum {
		return nil, fmt.Errorf("repl: frame checksum mismatch")
	}
	return payload, nil
}

// fields is a uvarint-field appender.
type fields struct{ buf []byte }

func (f *fields) typ(t byte)   { f.buf = append(f.buf, t) }
func (f *fields) u(v uint64)   { f.buf = binary.AppendUvarint(f.buf, v) }
func (f *fields) i(v int64)    { f.buf = binary.AppendVarint(f.buf, v) }
func (f *fields) b(v bool)     { f.u(map[bool]uint64{false: 0, true: 1}[v]) }
func (f *fields) raw(v []byte) { f.u(uint64(len(v))); f.buf = append(f.buf, v...) }

// reader is the matching field reader.
type reader struct{ buf []byte }

func (r *reader) u(what string) (uint64, error) {
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		return 0, fmt.Errorf("repl: bad %s field", what)
	}
	r.buf = r.buf[n:]
	return v, nil
}

func (r *reader) i(what string) (int64, error) {
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		return 0, fmt.Errorf("repl: bad %s field", what)
	}
	r.buf = r.buf[n:]
	return v, nil
}

func (r *reader) b(what string) (bool, error) {
	v, err := r.u(what)
	return v != 0, err
}

func (r *reader) raw(what string) ([]byte, error) {
	n, err := r.u(what + " length")
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.buf)) {
		return nil, fmt.Errorf("repl: %s length %d exceeds payload", what, n)
	}
	v := r.buf[:n]
	r.buf = r.buf[n:]
	return v, nil
}

// helloMsg is the replica's opening statement.
type helloMsg struct {
	version   uint64
	epoch     uint64 // replica's WAL epoch, 0 when fresh
	pos       uint64 // applied emit position, 0 when fresh
	omega     uint64 // 0 when fresh (adopt the primary's)
	precision uint64
	fresh     bool // directory empty: ship metadata + chunk sidecars
}

func (m helloMsg) encode() []byte {
	f := fields{}
	f.typ(frHello)
	f.u(m.version)
	f.u(m.epoch)
	f.u(m.pos)
	f.u(m.omega)
	f.u(m.precision)
	f.b(m.fresh)
	return f.buf
}

func decodeHello(body []byte) (m helloMsg, err error) {
	r := reader{body}
	if m.version, err = r.u("version"); err != nil {
		return
	}
	if m.epoch, err = r.u("epoch"); err != nil {
		return
	}
	if m.pos, err = r.u("pos"); err != nil {
		return
	}
	if m.omega, err = r.u("omega"); err != nil {
		return
	}
	if m.precision, err = r.u("precision"); err != nil {
		return
	}
	m.fresh, err = r.b("fresh")
	return
}

// metaMsg is the primary's sync plan: what follows (chunkCount Chunk
// frames, then Edges frames starting at startPos), and the coordinates
// the replica validates or adopts.
type metaMsg struct {
	version    uint64
	epoch      uint64
	omega      uint64
	precision  uint64
	startPos   uint64 // emit index of the first Edges frame to follow
	firstChunk uint64
	chunkCount uint64
	metaJSON   []byte // primary's checkpoint.meta.json, empty when none
}

func (m metaMsg) encode() []byte {
	f := fields{}
	f.typ(frMeta)
	f.u(m.version)
	f.u(m.epoch)
	f.u(m.omega)
	f.u(m.precision)
	f.u(m.startPos)
	f.u(m.firstChunk)
	f.u(m.chunkCount)
	f.raw(m.metaJSON)
	return f.buf
}

func decodeMeta(body []byte) (m metaMsg, err error) {
	r := reader{body}
	if m.version, err = r.u("version"); err != nil {
		return
	}
	if m.epoch, err = r.u("epoch"); err != nil {
		return
	}
	if m.omega, err = r.u("omega"); err != nil {
		return
	}
	if m.precision, err = r.u("precision"); err != nil {
		return
	}
	if m.startPos, err = r.u("startPos"); err != nil {
		return
	}
	if m.firstChunk, err = r.u("firstChunk"); err != nil {
		return
	}
	if m.chunkCount, err = r.u("chunkCount"); err != nil {
		return
	}
	m.metaJSON, err = r.raw("metaJSON")
	return
}

// chunkMsg carries one raw sidecar file, exactly as it sits on the
// primary's disk (the replica re-validates framing and checksum before
// writing it).
type chunkMsg struct {
	index uint64
	data  []byte
}

func (m chunkMsg) encode() []byte {
	f := fields{}
	f.typ(frChunk)
	f.u(m.index)
	f.raw(m.data)
	return f.buf
}

func decodeChunk(body []byte) (m chunkMsg, err error) {
	r := reader{body}
	if m.index, err = r.u("index"); err != nil {
		return
	}
	m.data, err = r.raw("data")
	return
}

// edgesMsg carries one emitted batch: base is the emit index of the
// first edge, record is the batch in WAL record encoding.
type edgesMsg struct {
	base   uint64
	record []byte
}

func (m edgesMsg) encode() []byte {
	f := fields{}
	f.typ(frEdges)
	f.u(m.base)
	f.raw(m.record)
	return f.buf
}

func decodeEdges(body []byte) (m edgesMsg, err error) {
	r := reader{body}
	if m.base, err = r.u("base"); err != nil {
		return
	}
	m.record, err = r.raw("record")
	return
}

// heartbeatMsg keeps an idle session alive and tells the replica where
// the primary's emit clock stands (the replica's lag gauge).
type heartbeatMsg struct {
	epoch uint64
	pos   uint64
}

func (m heartbeatMsg) encode() []byte {
	f := fields{}
	f.typ(frHeartbeat)
	f.u(m.epoch)
	f.u(m.pos)
	return f.buf
}

func decodeHeartbeat(body []byte) (m heartbeatMsg, err error) {
	r := reader{body}
	if m.epoch, err = r.u("epoch"); err != nil {
		return
	}
	m.pos, err = r.u("pos")
	return
}

// ackMsg acknowledges the applied position: every edge below pos is in
// the replica's own WAL. lastAt is the applied timestamp — the unit the
// primary's WAL retention floor works in.
type ackMsg struct {
	pos    uint64
	lastAt int64
}

func (m ackMsg) encode() []byte {
	f := fields{}
	f.typ(frAck)
	f.u(m.pos)
	f.i(m.lastAt)
	return f.buf
}

func decodeAck(body []byte) (m ackMsg, err error) {
	r := reader{body}
	if m.pos, err = r.u("pos"); err != nil {
		return
	}
	m.lastAt, err = r.i("lastAt")
	return
}

// errorMsg is a refusal: the code tells the replica whether to resync,
// stand down, or give up.
type errorMsg struct {
	code uint64
	msg  string
}

func (m errorMsg) encode() []byte {
	f := fields{}
	f.typ(frError)
	f.u(m.code)
	f.raw([]byte(m.msg))
	return f.buf
}

func decodeError(body []byte) (m errorMsg, err error) {
	r := reader{body}
	if m.code, err = r.u("code"); err != nil {
		return
	}
	raw, err := r.raw("msg")
	m.msg = string(raw)
	return
}
