package repl

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ipin/internal/core"
	"ipin/internal/obs"
	"ipin/internal/stream"
	"ipin/internal/trace"
)

// ReplicaConfig parameterizes a Replica. Dir and PrimaryAddr are
// required. The sketch coordinates (Omega, Precision) and pipeline
// shape are adopted from the primary's Meta frame when the directory is
// empty; when set they are validated against it instead. For
// byte-identical checkpoints under retention, ChunkEdges and Retain
// must match the primary's (chunk boundaries decide what retires).
type ReplicaConfig struct {
	// Dir is the replica's own state directory: it keeps its own WAL,
	// sidecars, and checkpoints, so a promoted replica is a fully
	// recoverable primary with no further copying.
	Dir string
	// PrimaryAddr is the primary's replication listen address.
	PrimaryAddr string

	// Omega, Precision, NumNodes, ChunkEdges, CheckpointEvery,
	// CheckpointEdges, SegmentBytes, SyncEvery, Retain, ProfileWindow and
	// TopK mirror stream.Config; zero values adopt the primary's
	// coordinates (Omega, Precision) or the stream defaults.
	Omega           int64
	Precision       int
	NumNodes        int
	ChunkEdges      int
	CheckpointEvery time.Duration
	CheckpointEdges int
	SegmentBytes    int64
	SyncEvery       int
	Retain          int64
	ProfileWindow   int64
	TopK            int

	// HeartbeatTimeout is the read deadline per frame: with the primary
	// heartbeating every 500ms, no frame for this long means the primary
	// is gone. 0 selects 2s.
	HeartbeatTimeout time.Duration
	// ReconnectEvery is the pause between attach attempts; 0 selects 250ms.
	ReconnectEvery time.Duration
	// DialTimeout bounds each dial; 0 selects 1s.
	DialTimeout time.Duration

	// Publish receives each folded checkpoint of the replica's own
	// ingester — wire it to a read-only serve.Server for replica reads.
	Publish func(*core.ApproxSummaries)
	// Registry receives the repl_* replica metrics; nil disables them.
	Registry *obs.Registry
	// Journal, when non-nil, receives sync/lost/promote lifecycle events.
	Journal *trace.Journal
	// OnPrimaryLost fires (from the tailer goroutine) once per
	// connected-to-lost transition — the hook a failover controller or an
	// alerting layer attaches to.
	OnPrimaryLost func()
}

// Replica tails a primary: it bootstraps its state directory from the
// shipped snapshot (or recovers its own), applies the replicated edge
// sequence through its own zero-slack ingester, acknowledges positions,
// and keeps reconnecting until promoted or closed.
type Replica struct {
	cfg ReplicaConfig
	mx  *replicaMetrics
	jr  *trace.Journal

	ing       atomic.Pointer[stream.Ingester]
	ready     chan struct{} // closed once the ingester exists
	readyOnce sync.Once

	pos       atomic.Int64 // edges applied into the local pipeline (emit index)
	appliedAt atomic.Int64 // timestamp of the last applied edge

	lastContact  atomic.Int64 // unix nanos of the last frame from the primary; 0 = never
	sessionLive  atomic.Bool  // an established connection to the primary exists right now
	primaryPos   atomic.Int64
	primaryEpoch atomic.Uint64

	promoted atomic.Bool
	failErr  atomic.Pointer[error]

	connMu sync.Mutex
	conn   net.Conn

	// wmu serializes frame writes on the current session's connection:
	// the frame loop's applied acks and the keepalive ticker's liveness
	// acks share one bufio.Writer.
	wmu sync.Mutex

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// connected is tailer-goroutine local: whether the current session
	// completed its sync plan (drives the once-per-transition lost hook).
	connected bool
}

// NewReplica opens (or prepares to bootstrap) the replica state
// directory and starts the tailer. When Dir already holds state the
// local ingester recovers immediately — the replica serves its
// pre-crash coverage while it delta-syncs; an empty Dir waits for the
// primary's snapshot.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("repl: ReplicaConfig.Dir is required")
	}
	if cfg.PrimaryAddr == "" {
		return nil, fmt.Errorf("repl: ReplicaConfig.PrimaryAddr is required")
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 2 * time.Second
	}
	if cfg.ReconnectEvery <= 0 {
		cfg.ReconnectEvery = 250 * time.Millisecond
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = time.Second
	}
	r := &Replica{
		cfg:   cfg,
		mx:    newReplicaMetrics(cfg.Registry),
		jr:    cfg.Journal,
		ready: make(chan struct{}),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	r.appliedAt.Store(math.MinInt64)
	cfg.Registry.GaugeFunc(MetricReplicaLag, "Edges the replica trails the primary's emit clock by.", func() int64 {
		if lag := r.primaryPos.Load() - r.pos.Load(); lag > 0 {
			return lag
		}
		return 0
	})
	if hasState(cfg.Dir) {
		ing, err := r.openIngester(cfg.Omega, cfg.Precision, 0)
		if err != nil {
			return nil, err
		}
		r.adopt(ing)
	}
	go r.tail()
	return r, nil
}

// hasState reports whether a directory holds recoverable pipeline state.
func hasState(dir string) bool {
	if _, err := os.Stat(filepath.Join(dir, stream.CheckpointMetaName)); err == nil {
		return true
	}
	for _, pat := range []string{"wal-*.seg", "chunk-*.blk"} {
		if names, _ := filepath.Glob(filepath.Join(dir, pat)); len(names) > 0 {
			return true
		}
	}
	return false
}

// openIngester opens the replica's own pipeline over Dir. Slack is
// always zero: the replicated sequence is the primary's emitted order,
// strictly increasing by construction.
func (r *Replica) openIngester(omega int64, precision int, epoch uint64) (*stream.Ingester, error) {
	if info, ok := stream.ReadCheckpointInfo(r.cfg.Dir); ok {
		if omega == 0 {
			omega = info.Omega
		}
		if precision == 0 {
			precision = info.Precision
		}
	}
	if omega == 0 {
		return nil, fmt.Errorf("repl: Omega unknown: directory %s has no checkpoint and ReplicaConfig.Omega is zero", r.cfg.Dir)
	}
	return stream.New(stream.Config{
		Dir:             r.cfg.Dir,
		Omega:           omega,
		Precision:       precision,
		NumNodes:        r.cfg.NumNodes,
		Slack:           0,
		ChunkEdges:      r.cfg.ChunkEdges,
		CheckpointEvery: r.cfg.CheckpointEvery,
		CheckpointEdges: r.cfg.CheckpointEdges,
		SegmentBytes:    r.cfg.SegmentBytes,
		SyncEvery:       r.cfg.SyncEvery,
		Retain:          r.cfg.Retain,
		ProfileWindow:   r.cfg.ProfileWindow,
		TopK:            r.cfg.TopK,
		Epoch:           epoch,
		Publish:         r.cfg.Publish,
		Registry:        r.cfg.Registry,
		Journal:         r.cfg.Journal,
	})
}

// adopt installs a freshly opened ingester and aligns the apply clock
// with what it recovered.
func (r *Replica) adopt(ing *stream.Ingester) {
	st := ing.Stats()
	r.pos.Store(st.Emitted)
	if st.Emitted > 0 {
		r.appliedAt.Store(st.LastAt)
	} else {
		r.appliedAt.Store(math.MinInt64)
	}
	r.ing.Store(ing)
	r.readyOnce.Do(func() { close(r.ready) })
}

// Ingester returns the replica's local pipeline, nil until the first
// sync plan lands (WaitReady blocks for it). After Promote it is the
// new primary's intake.
func (r *Replica) Ingester() *stream.Ingester { return r.ing.Load() }

// WaitReady blocks until the replica has a local ingester (recovered or
// bootstrapped), the tailer died on a terminal error, or ctx expires.
func (r *Replica) WaitReady(ctx context.Context) error {
	select {
	case <-r.ready:
		return nil
	case <-r.done:
		if err := r.Err(); err != nil {
			return err
		}
		return fmt.Errorf("repl: replica stopped before syncing")
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Position returns the number of replicated edges applied into the
// local pipeline — the replica's emit clock, comparable across replicas
// to pick the most caught-up one.
func (r *Replica) Position() int64 { return r.pos.Load() }

// PrimaryPosition returns the primary's emit clock as of the last
// heartbeat (0 before the first).
func (r *Replica) PrimaryPosition() int64 { return r.primaryPos.Load() }

// LastContact returns when the last frame arrived from the primary, the
// zero time if no session ever delivered one.
func (r *Replica) LastContact() time.Time {
	at := r.lastContact.Load()
	if at == 0 {
		return time.Time{}
	}
	return time.Unix(0, at)
}

// SessionLive reports whether the replica currently holds an
// established connection to the primary. It is the liveness complement
// to LastContact: LastContact only advances when the frame loop reads a
// frame, so it goes stale whenever the replica is busy applying (a
// checkpoint fold can park the loop for seconds). A live session means
// a primary completed the handshake on the other end and the keepalive
// writer has not seen the connection fail — evidence the primary is up
// even when no frame has been read recently.
func (r *Replica) SessionLive() bool { return r.sessionLive.Load() }

// Promoted reports whether Promote completed on this replica.
func (r *Replica) Promoted() bool { return r.promoted.Load() }

// Err returns the tailer's terminal error, nil while it keeps retrying.
func (r *Replica) Err() error {
	if p := r.failErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Promote turns this replica into a primary: it stops the tailer,
// advances the local WAL epoch past everything seen (sealing the
// replicated tail and fencing the old primary out of this lineage), and
// cuts a checkpoint so the promoted coverage is published before the
// first post-promotion write. The ingester keeps running — intake
// resumes at the replicated position by pushing into Ingester().
func (r *Replica) Promote(ctx context.Context) error {
	if r.promoted.Load() {
		return nil
	}
	r.stopTail()
	select {
	case <-r.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	ing := r.ing.Load()
	if ing == nil {
		return fmt.Errorf("repl: cannot promote a replica that never synced")
	}
	start := time.Now()
	epoch := r.primaryEpoch.Load()
	if e := ing.Epoch(); e > epoch {
		epoch = e
	}
	if err := ing.AdvanceEpoch(ctx, epoch+1); err != nil {
		return err
	}
	if err := ing.Checkpoint(ctx); err != nil {
		return err
	}
	r.promoted.Store(true)
	r.mx.promotions.Inc()
	r.jr.Record(trace.EventReplPromote, "", time.Since(start), map[string]any{
		"epoch": epoch + 1, "pos": r.pos.Load(), "last_at": r.appliedAt.Load(),
	})
	return nil
}

// Close stops the tailer and shuts the local ingester down (final
// checkpoint included). A promoted replica's ingester is closed too —
// callers that handed it to a Primary close that first.
func (r *Replica) Close(ctx context.Context) error {
	r.stopTail()
	select {
	case <-r.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	if ing := r.ing.Load(); ing != nil {
		return ing.Close(ctx)
	}
	return nil
}

func (r *Replica) stopTail() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.connMu.Lock()
	if r.conn != nil {
		r.conn.Close()
	}
	r.connMu.Unlock()
}

func (r *Replica) setConn(c net.Conn) {
	r.connMu.Lock()
	r.conn = c
	r.connMu.Unlock()
}

// terminal marks an unrecoverable error: retrying cannot fix a config
// mismatch or a corrupt local state, so the tailer stops.
func (r *Replica) terminal(err error) error {
	r.failErr.Store(&err)
	return err
}

// lost records a connected-to-lost transition, once per transition.
func (r *Replica) lost(cause string, err error) {
	if !r.connected {
		return
	}
	r.connected = false
	r.mx.primaryLost.Inc()
	fieldsMap := map[string]any{"pos": r.pos.Load()}
	if err != nil {
		fieldsMap["error"] = err.Error()
	}
	r.jr.Record(trace.EventReplLost, cause, 0, fieldsMap)
	if r.cfg.OnPrimaryLost != nil {
		r.cfg.OnPrimaryLost()
	}
}

// tail is the reconnect loop: one session at a time, a fixed pause
// between attempts, until stopped or terminally failed.
func (r *Replica) tail() {
	defer close(r.done)
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		r.session()
		if r.Err() != nil {
			return
		}
		select {
		case <-r.stop:
			return
		case <-time.After(r.cfg.ReconnectEvery):
		}
	}
}

// session runs one attach: handshake, sync plan, then the frame loop
// until the connection dies, the primary refuses, or the replica stops.
func (r *Replica) session() {
	conn, err := net.DialTimeout("tcp", r.cfg.PrimaryAddr, r.cfg.DialTimeout)
	if err != nil {
		r.lost("dial", err)
		return
	}
	r.setConn(conn)
	defer func() {
		r.sessionLive.Store(false)
		conn.Close()
		r.setConn(nil)
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	if _, err := bw.WriteString(protoMagic); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	var magic [len(protoMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		r.lost("handshake", err)
		return
	}
	if string(magic[:]) != protoMagic {
		r.terminal(fmt.Errorf("repl: %s is not a replication primary (magic %q)", r.cfg.PrimaryAddr, magic))
		return
	}
	// The primary's magic arrived, so a live primary is on the other end
	// of this connection. Session liveness is a separate signal from
	// LastContact: the frame loop stamps LastContact only when it reads,
	// and a replica buried in a multi-second checkpoint fold reads
	// nothing — a failover controller must not mistake that for primary
	// loss while the session is still up.
	r.sessionLive.Store(true)
	hello := helloMsg{version: protoVersion}
	if ing := r.ing.Load(); ing != nil {
		hello.epoch = ing.Epoch()
		hello.pos = uint64(r.pos.Load())
		hello.omega = uint64(ing.Omega())
		hello.precision = uint64(ing.Precision())
	} else {
		hello.fresh = true
		hello.omega = uint64(r.cfg.Omega)
		hello.precision = uint64(r.cfg.Precision)
	}
	if err := writeFrame(bw, hello.encode()); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	conn.SetDeadline(time.Time{})

	// Liveness acks flow on their own clock from here: applying a frame
	// can disappear into a multi-second checkpoint fold, and the primary
	// must not read that as a dead replica.
	kaStop := make(chan struct{})
	kaDone := make(chan struct{})
	go func() {
		defer close(kaDone)
		r.keepalive(conn, bw, kaStop)
	}()
	defer func() {
		close(kaStop)
		<-kaDone
	}()

	// Bootstrap state for a fresh session: the Meta frame's plan and how
	// many Chunk frames it still owes before the ingester can open.
	var bootstrap *metaMsg
	pendingChunks := 0
	syncStart := time.Now()

	for {
		conn.SetReadDeadline(time.Now().Add(r.cfg.HeartbeatTimeout))
		payload, err := readFrame(br)
		if err != nil {
			select {
			case <-r.stop:
			default:
				r.lost("read", err)
			}
			return
		}
		if len(payload) == 0 {
			r.lost("frame", fmt.Errorf("empty frame"))
			return
		}
		r.lastContact.Store(time.Now().UnixNano())
		switch payload[0] {
		case frMeta:
			m, err := decodeMeta(payload[1:])
			if err != nil {
				r.lost("frame", err)
				return
			}
			if m.version != protoVersion {
				r.terminal(fmt.Errorf("repl: primary speaks protocol version %d", m.version))
				return
			}
			r.primaryEpoch.Store(m.epoch)
			if ing := r.ing.Load(); ing != nil {
				if int64(m.startPos) != r.pos.Load() {
					r.lost("frame", fmt.Errorf("sync plan resumes at %d, replica is at %d", m.startPos, r.pos.Load()))
					return
				}
				r.connected = true
				r.jr.Record(trace.EventReplSync, "delta", time.Since(syncStart), map[string]any{
					"pos": r.pos.Load(), "epoch": m.epoch,
				})
				continue
			}
			if len(m.metaJSON) > 0 {
				if err := stream.WriteShippedMeta(r.cfg.Dir, m.metaJSON); err != nil {
					r.terminal(err)
					return
				}
			}
			pendingChunks = int(m.chunkCount)
			bootstrap = &m
			if pendingChunks == 0 {
				if !r.finishBootstrap(bootstrap, syncStart) {
					return
				}
				bootstrap = nil
			}
		case frChunk:
			if bootstrap == nil || pendingChunks <= 0 {
				r.lost("frame", fmt.Errorf("unexpected Chunk frame"))
				return
			}
			c, err := decodeChunk(payload[1:])
			if err != nil {
				r.lost("frame", err)
				return
			}
			if err := stream.WriteShippedChunk(r.cfg.Dir, int(c.index), c.data); err != nil {
				r.terminal(err)
				return
			}
			pendingChunks--
			if pendingChunks == 0 {
				if !r.finishBootstrap(bootstrap, syncStart) {
					return
				}
				bootstrap = nil
			}
		case frEdges:
			ing := r.ing.Load()
			if ing == nil {
				r.lost("frame", fmt.Errorf("Edges frame before the sync plan completed"))
				return
			}
			em, err := decodeEdges(payload[1:])
			if err != nil {
				r.lost("frame", err)
				return
			}
			edges, err := stream.DecodeBatch(em.record)
			if err != nil {
				r.lost("frame", err)
				return
			}
			base := int64(em.base)
			pos := r.pos.Load()
			if base+int64(len(edges)) <= pos {
				continue // overlap with what the snapshot already covered
			}
			if base > pos {
				r.lost("frame", fmt.Errorf("edge gap: replica at %d, frame starts at %d", pos, base))
				return
			}
			fresh := edges[pos-base:]
			for _, e := range fresh {
				if err := ing.Push(e); err != nil {
					r.terminal(err)
					return
				}
				pos++
				r.appliedAt.Store(int64(e.At))
			}
			r.pos.Store(pos)
			r.mx.applied.Add(int64(len(fresh)))
			if !r.ack(conn, bw) {
				return
			}
		case frHeartbeat:
			hb, err := decodeHeartbeat(payload[1:])
			if err != nil {
				r.lost("frame", err)
				return
			}
			r.primaryEpoch.Store(hb.epoch)
			r.primaryPos.Store(int64(hb.pos))
			if !r.ack(conn, bw) {
				return
			}
		case frError:
			em, err := decodeError(payload[1:])
			if err != nil {
				r.lost("frame", err)
				return
			}
			switch em.code {
			case ErrCodeResync:
				r.mx.resyncs.Inc()
				if err := r.resync(); err != nil {
					r.terminal(err)
				}
				return
			case ErrCodeFenced:
				// The primary thinks WE are ahead — nothing to tail there.
				// Keep retrying quietly: either it catches up (re-attached
				// old primary) or the operator re-points us.
				return
			default:
				r.terminal(fmt.Errorf("repl: primary refused: %s", em.msg))
				return
			}
		default:
			r.lost("frame", fmt.Errorf("unknown frame type %d", payload[0]))
			return
		}
	}
}

// finishBootstrap opens the local ingester over the shipped files and
// verifies recovery landed exactly at the plan's resume position.
func (r *Replica) finishBootstrap(m *metaMsg, syncStart time.Time) bool {
	ing, err := r.openIngester(int64(m.omega), int(m.precision), m.epoch)
	if err != nil {
		r.terminal(err)
		return false
	}
	if got := ing.Stats().Emitted; got != int64(m.startPos) {
		ing.Close(context.Background())
		r.terminal(fmt.Errorf("repl: bootstrap recovered %d edges, sync plan resumes at %d", got, m.startPos))
		return false
	}
	if r.cfg.Omega != 0 && r.cfg.Omega != int64(m.omega) {
		ing.Close(context.Background())
		r.terminal(fmt.Errorf("repl: configured Omega %d, primary runs %d", r.cfg.Omega, m.omega))
		return false
	}
	r.adopt(ing)
	r.connected = true
	r.jr.Record(trace.EventReplSync, "bootstrap", time.Since(syncStart), map[string]any{
		"pos": r.pos.Load(), "epoch": m.epoch, "chunks": m.chunkCount,
	})
	return true
}

// ack reports the applied position; false ends the session. The write
// deadline bounds a wedged peer: an ack that cannot drain within the
// handshake budget means the connection is dead, not slow.
func (r *Replica) ack(conn net.Conn, bw *bufio.Writer) bool {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(handshakeTimeout))
	msg := ackMsg{pos: uint64(r.pos.Load()), lastAt: r.appliedAt.Load()}
	if err := writeFrame(bw, msg.encode()); err != nil {
		return false
	}
	return bw.Flush() == nil
}

// ackKeepaliveEvery is the cadence of the session's liveness acks: the
// keepalive goroutine re-acknowledges the current position this often
// even when the frame loop is parked inside a long Push (a checkpoint
// fold), so the primary's AckTimeout measures whether the replica
// process is alive — not whether its current fold is shorter than the
// timeout. Must stay comfortably under the smallest sane AckTimeout.
const ackKeepaliveEvery = time.Second

// keepalive re-acks the applied position on a timer until stopped. A
// failed write closes the connection so the frame loop (possibly deep
// inside a fold) observes the loss on its next read instead of applying
// into a session the primary has already dropped.
func (r *Replica) keepalive(conn net.Conn, bw *bufio.Writer, stop <-chan struct{}) {
	tick := time.NewTicker(ackKeepaliveEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			if r.ing.Load() == nil {
				continue // mid-bootstrap: no position to vouch for yet
			}
			if !r.ack(conn, bw) {
				// The conn is gone even though the frame loop may be deep
				// inside a fold and unable to notice for a while: clear
				// session liveness here so a failover controller sees the
				// loss on the keepalive clock, not the fold's.
				r.sessionLive.Store(false)
				conn.Close()
				return
			}
		}
	}
}

// resync discards the local state so the next attach bootstraps fresh:
// the primary retained nothing that can bridge our position (retention
// outran us, or an epoch we never saw fenced our lineage).
func (r *Replica) resync() error {
	if ing := r.ing.Load(); ing != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := ing.Close(ctx)
		cancel()
		r.ing.Store(nil)
		if err != nil {
			return err
		}
	}
	for _, pat := range []string{"wal-*.seg", "chunk-*.blk", "*.tmp"} {
		names, err := filepath.Glob(filepath.Join(r.cfg.Dir, pat))
		if err != nil {
			return err
		}
		for _, name := range names {
			if err := os.Remove(name); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	for _, name := range []string{stream.CheckpointName, stream.CheckpointMetaName} {
		if err := os.Remove(filepath.Join(r.cfg.Dir, name)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	r.pos.Store(0)
	r.appliedAt.Store(math.MinInt64)
	r.jr.Record(trace.EventReplSync, "resync", 0, map[string]any{"dir": r.cfg.Dir})
	return nil
}
