package repl

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"math"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ipin/internal/core"
	"ipin/internal/graph"
	"ipin/internal/stream"
)

// testLog builds a deterministic interaction stream with strictly
// increasing timestamps (the shape the live pipeline emits).
func testLog(rng *rand.Rand, n, m int) []graph.Interaction {
	edges := make([]graph.Interaction, m)
	at := graph.Time(0)
	for i := range edges {
		at += graph.Time(1 + rng.Int63n(3))
		edges[i] = graph.Interaction{
			Src: graph.NodeID(rng.Intn(n)),
			Dst: graph.NodeID(rng.Intn(n)),
			At:  at,
		}
	}
	return edges
}

// offlineBytes is the ground truth: the offline one-pass scan over the
// edges, in canonical IRX1 encoding.
func offlineBytes(t *testing.T, edges []graph.Interaction, omega int64, precision int) []byte {
	t.Helper()
	n := 0
	for _, e := range edges {
		if m := int(max(e.Src, e.Dst)) + 1; m > n {
			n = m
		}
	}
	l := &graph.Log{NumNodes: n, Interactions: edges}
	s, err := core.ComputeApprox(l, omega, precision)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// ckptBytes reads a state directory's checkpoint.irx.
func ckptBytes(t *testing.T, dir string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, stream.CheckpointName))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// waitPos polls until the replica applied at least pos edges.
func waitPos(t *testing.T, r *Replica, pos int64, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for r.Position() < pos {
		if err := r.Err(); err != nil {
			t.Fatalf("replica failed at position %d: %v", r.Position(), err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at position %d, want %d", r.Position(), pos)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func pushAll(t *testing.T, ing *stream.Ingester, edges []graph.Interaction) {
	t.Helper()
	for _, e := range edges {
		if err := ing.Push(e); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFreshReplicaFullSyncIdentity: a replica attaching to a primary
// that already checkpointed bootstraps from the shipped snapshot (meta
// bytes + raw sidecars), tails the live stream, and its own checkpoint
// is byte-identical to the primary's and to the offline scan.
func TestFreshReplicaFullSyncIdentity(t *testing.T) {
	ctx := testCtx(t)
	rng := rand.New(rand.NewSource(71))
	edges := testLog(rng, 30, 600)
	pdir, rdir := t.TempDir(), t.TempDir()

	ing, err := stream.New(stream.Config{Dir: pdir, Omega: 20, Precision: 4, ChunkEdges: 50, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close(ctx)
	pushAll(t, ing, edges[:300])
	if err := ing.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}

	p, err := NewPrimary(PrimaryConfig{Ingester: ing, HeartbeatEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rep, err := NewReplica(ReplicaConfig{
		Dir: rdir, PrimaryAddr: p.Addr(), ChunkEdges: 50, CheckpointEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close(ctx)
	if err := rep.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	if got := rep.Ingester().Omega(); got != 20 {
		t.Fatalf("replica adopted omega %d, want 20", got)
	}
	waitPos(t, rep, 300, 10*time.Second)

	pushAll(t, ing, edges[300:])
	waitPos(t, rep, 600, 10*time.Second)
	if err := ing.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rep.Ingester().Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}

	want := offlineBytes(t, edges, 20, 4)
	if !bytes.Equal(ckptBytes(t, pdir), want) {
		t.Fatal("primary checkpoint differs from offline scan")
	}
	if !bytes.Equal(ckptBytes(t, rdir), want) {
		t.Fatal("replica checkpoint differs from offline scan")
	}
	if p.Sessions() != 1 {
		t.Fatalf("primary reports %d sessions, want 1", p.Sessions())
	}
}

// TestReplicaDeltaSyncReattach: a replica that disconnects with durable
// local state re-attaches at its recovered position and receives only
// the suffix — and still converges byte-identically.
func TestReplicaDeltaSyncReattach(t *testing.T) {
	ctx := testCtx(t)
	rng := rand.New(rand.NewSource(72))
	edges := testLog(rng, 30, 600)
	pdir, rdir := t.TempDir(), t.TempDir()

	ing, err := stream.New(stream.Config{Dir: pdir, Omega: 20, Precision: 4, ChunkEdges: 50, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close(ctx)
	p, err := NewPrimary(PrimaryConfig{Ingester: ing, HeartbeatEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	rep, err := NewReplica(ReplicaConfig{Dir: rdir, PrimaryAddr: p.Addr(), ChunkEdges: 50, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	pushAll(t, ing, edges[:300])
	waitPos(t, rep, 300, 10*time.Second)
	if err := rep.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// The replica is away; the primary keeps emitting.
	pushAll(t, ing, edges[300:450])

	rep2, err := NewReplica(ReplicaConfig{Dir: rdir, PrimaryAddr: p.Addr(), Omega: 20, Precision: 4, ChunkEdges: 50, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Close(ctx)
	if rep2.Position() != 300 {
		t.Fatalf("re-opened replica recovered position %d, want 300", rep2.Position())
	}
	waitPos(t, rep2, 450, 10*time.Second)
	pushAll(t, ing, edges[450:])
	waitPos(t, rep2, 600, 10*time.Second)
	if err := rep2.Ingester().Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckptBytes(t, rdir), offlineBytes(t, edges, 20, 4)) {
		t.Fatal("re-attached replica checkpoint differs from offline scan")
	}
}

// fakeReplica speaks just enough IREP0001 to attach and then misbehave
// on purpose: it acknowledges only when the test says so.
type fakeReplica struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	pos  int64
	at   int64
}

func attachFake(t *testing.T, addr string, epoch uint64) *fakeReplica {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeReplica{t: t, conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn), at: math.MinInt64}
	if _, err := f.bw.WriteString(protoMagic); err != nil {
		t.Fatal(err)
	}
	if err := f.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	var magic [len(protoMagic)]byte
	if _, err := io.ReadFull(f.br, magic[:]); err != nil {
		t.Fatal(err)
	}
	hello := helloMsg{version: protoVersion, epoch: epoch, fresh: epoch == 0}
	if epoch > 0 {
		// A non-fresh peer from a later epoch: the fencing probe.
		hello.fresh = false
		hello.pos = 1
		hello.omega = 20
		hello.precision = 4
	}
	if err := writeFrame(f.bw, hello.encode()); err != nil {
		t.Fatal(err)
	}
	if err := f.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return f
}

// readUntil consumes frames until the observed stream position reaches
// pos, returning the last applied timestamp.
func (f *fakeReplica) readUntil(pos int64) {
	f.t.Helper()
	f.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	for f.pos < pos {
		payload, err := readFrame(f.br)
		if err != nil {
			f.t.Fatalf("fake replica read at %d: %v", f.pos, err)
		}
		switch payload[0] {
		case frEdges:
			em, err := decodeEdges(payload[1:])
			if err != nil {
				f.t.Fatal(err)
			}
			edges, err := stream.DecodeBatch(em.record)
			if err != nil {
				f.t.Fatal(err)
			}
			f.pos = int64(em.base) + int64(len(edges))
			f.at = int64(edges[len(edges)-1].At)
		case frMeta, frChunk, frHeartbeat:
		case frError:
			em, _ := decodeError(payload[1:])
			f.t.Fatalf("fake replica refused: code %d: %s", em.code, em.msg)
		}
	}
}

func (f *fakeReplica) ack() {
	f.t.Helper()
	if err := writeFrame(f.bw, ackMsg{pos: uint64(f.pos), lastAt: f.at}.encode()); err != nil {
		f.t.Fatal(err)
	}
	if err := f.bw.Flush(); err != nil {
		f.t.Fatal(err)
	}
}

func segCount(t *testing.T, dir string) int {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	return len(names)
}

// TestWALRetentionFloorHeldByUnackedReplica: WAL compaction must not
// delete segments an attached replica has not acknowledged, even when
// chunk sidecars fully cover them — the floor is min(durable frontier,
// replica ack). Once the replica acks, the backlog compacts away.
func TestWALRetentionFloorHeldByUnackedReplica(t *testing.T) {
	ctx := testCtx(t)
	rng := rand.New(rand.NewSource(73))
	edges := testLog(rng, 30, 400)
	pdir := t.TempDir()

	ing, err := stream.New(stream.Config{Dir: pdir, Omega: 20, Precision: 4, ChunkEdges: 50, CheckpointEvery: -1, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close(ctx)
	p, err := NewPrimary(PrimaryConfig{Ingester: ing, HeartbeatEvery: 50 * time.Millisecond, AckTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	fake := attachFake(t, p.Addr(), 0)
	defer fake.conn.Close()
	// The session must be registered before edges flow, or the floor has
	// nothing to hold. Attach is complete once the sync plan arrives.
	fake.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	payload, err := readFrame(fake.br)
	if err != nil {
		t.Fatal(err)
	}
	if payload[0] != frMeta {
		t.Fatalf("expected Meta, got frame type %d", payload[0])
	}

	pushAll(t, ing, edges[:300])
	if err := ing.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	// Sidecars now cover all 300 edges; without the replication floor the
	// covered segments would be gone. The unacked session holds them.
	held := segCount(t, pdir)
	if held < 2 {
		t.Fatalf("expected several retained WAL segments under an unacked session, got %d", held)
	}

	fake.readUntil(300)
	fake.ack()
	// The ack lands asynchronously. Wait until the primary has seen it
	// before feeding more edges: segments created past the acked
	// timestamp stay retained (the fake never acks again), so pushing
	// first can bury the compaction signal under fresh unacked segments.
	ackSeen := time.Now().Add(10 * time.Second)
	for {
		acked := int64(-1)
		p.mu.Lock()
		for s := range p.sessions {
			acked = s.ackPos.Load()
		}
		p.mu.Unlock()
		if acked >= 300 {
			break
		}
		if time.Now().After(ackSeen) {
			t.Fatalf("primary never registered the ack (at %d)", acked)
		}
		time.Sleep(time.Millisecond)
	}
	// Compaction runs on the run loop at the next checkpoint. Poll until
	// the backlog shrinks.
	deadline := time.Now().Add(10 * time.Second)
	i := 300
	for segCount(t, pdir) >= held {
		if time.Now().After(deadline) {
			t.Fatalf("WAL backlog never compacted after ack: still %d segments", segCount(t, pdir))
		}
		if i < len(edges) {
			pushAll(t, ing, edges[i:i+1])
			i++
		}
		if err := ing.Checkpoint(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPromoteResumesIntake: after primary loss the promoted replica
// seals the replicated tail under a new epoch, keeps accepting edges,
// and the final state over replicated-prefix + post-promotion suffix is
// byte-identical to the offline scan over the whole sequence.
func TestPromoteResumesIntake(t *testing.T) {
	ctx := testCtx(t)
	rng := rand.New(rand.NewSource(74))
	edges := testLog(rng, 30, 600)
	pdir, rdir := t.TempDir(), t.TempDir()

	ing, err := stream.New(stream.Config{Dir: pdir, Omega: 20, Precision: 4, ChunkEdges: 50, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPrimary(PrimaryConfig{Ingester: ing, HeartbeatEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	lost := make(chan struct{}, 1)
	rep, err := NewReplica(ReplicaConfig{
		Dir: rdir, PrimaryAddr: p.Addr(), ChunkEdges: 50, CheckpointEvery: -1,
		OnPrimaryLost: func() {
			select {
			case lost <- struct{}{}:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close(ctx)
	pushAll(t, ing, edges[:300])
	waitPos(t, rep, 300, 10*time.Second)

	// Primary dies.
	p.Close()
	if err := ing.Close(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case <-lost:
	case <-time.After(10 * time.Second):
		t.Fatal("OnPrimaryLost never fired")
	}

	if err := rep.Promote(ctx); err != nil {
		t.Fatal(err)
	}
	if !rep.Promoted() {
		t.Fatal("Promoted() false after Promote")
	}
	if got := rep.Ingester().Epoch(); got != 1 {
		t.Fatalf("promoted epoch %d, want 1", got)
	}
	// The sealed promotion checkpoint covers exactly the replicated
	// prefix.
	if !bytes.Equal(ckptBytes(t, rdir), offlineBytes(t, edges[:300], 20, 4)) {
		t.Fatal("promotion checkpoint differs from offline scan over the replicated prefix")
	}

	// Intake resumes on the promoted replica.
	pushAll(t, rep.Ingester(), edges[300:])
	if err := rep.Ingester().Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckptBytes(t, rdir), offlineBytes(t, edges, 20, 4)) {
		t.Fatal("post-promotion state differs from offline scan over the full sequence")
	}
}

// TestFencedStalePrimary: a peer presenting a newer epoch fences the
// primary — it answers Fenced and flags itself so the embedding layer
// stops routing writes to it.
func TestFencedStalePrimary(t *testing.T) {
	ctx := testCtx(t)
	rng := rand.New(rand.NewSource(75))
	pdir := t.TempDir()
	ing, err := stream.New(stream.Config{Dir: pdir, Omega: 20, Precision: 4, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close(ctx)
	pushAll(t, ing, testLog(rng, 30, 50))
	p, err := NewPrimary(PrimaryConfig{Ingester: ing})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	fake := attachFake(t, p.Addr(), 3)
	defer fake.conn.Close()
	fake.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	payload, err := readFrame(fake.br)
	if err != nil {
		t.Fatal(err)
	}
	if payload[0] != frError {
		t.Fatalf("expected Error frame, got type %d", payload[0])
	}
	em, err := decodeError(payload[1:])
	if err != nil {
		t.Fatal(err)
	}
	if em.code != ErrCodeFenced {
		t.Fatalf("error code %d, want Fenced (%d)", em.code, ErrCodeFenced)
	}
	if !p.Fenced() {
		t.Fatal("primary did not flag itself fenced")
	}
}

// TestOldPrimaryReattachesViaResync: a stale primary's directory (old
// epoch, possibly divergent tail) attached as a replica to the promoted
// lineage is refused delta-sync and rebuilt from scratch — the safe
// answer to divergence — and converges byte-identically.
func TestOldPrimaryReattachesViaResync(t *testing.T) {
	ctx := testCtx(t)
	rng := rand.New(rand.NewSource(76))
	edges := testLog(rng, 30, 600)
	pdir, rdir := t.TempDir(), t.TempDir()

	ing, err := stream.New(stream.Config{Dir: pdir, Omega: 20, Precision: 4, ChunkEdges: 50, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPrimary(PrimaryConfig{Ingester: ing, HeartbeatEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(ReplicaConfig{Dir: rdir, PrimaryAddr: p.Addr(), ChunkEdges: 50, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close(ctx)
	pushAll(t, ing, edges[:300])
	waitPos(t, rep, 300, 10*time.Second)
	p.Close()
	if err := ing.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rep.Promote(ctx); err != nil {
		t.Fatal(err)
	}
	pushAll(t, rep.Ingester(), edges[300:])

	// The promoted replica now serves as primary; the old primary's
	// directory re-attaches as a replica of the new lineage.
	p2, err := NewPrimary(PrimaryConfig{Ingester: rep.Ingester(), HeartbeatEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	old, err := NewReplica(ReplicaConfig{Dir: pdir, PrimaryAddr: p2.Addr(), Omega: 20, Precision: 4, ChunkEdges: 50, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close(ctx)
	// Epoch 0 state against an epoch-1 primary: resync, then full sync.
	waitPos(t, old, 600, 15*time.Second)
	if err := old.Ingester().Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckptBytes(t, pdir), offlineBytes(t, edges, 20, 4)) {
		t.Fatal("re-attached old primary differs from offline scan")
	}
	if old.Ingester().Epoch() != 1 {
		t.Fatalf("re-synced old primary runs epoch %d, want 1", old.Ingester().Epoch())
	}
}

// TestControllerPromotesMostCaughtUp: on primary loss the controller
// waits out the timeout, then promotes the replica with the highest
// applied position; the promoted checkpoint matches the offline scan
// over its prefix.
func TestControllerPromotesMostCaughtUp(t *testing.T) {
	ctx := testCtx(t)
	rng := rand.New(rand.NewSource(77))
	edges := testLog(rng, 30, 400)
	pdir := t.TempDir()

	ing, err := stream.New(stream.Config{Dir: pdir, Omega: 20, Precision: 4, ChunkEdges: 50, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPrimary(PrimaryConfig{Ingester: ing, HeartbeatEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	reps := make([]*Replica, 2)
	dirs := make([]string, 2)
	for i := range reps {
		dirs[i] = t.TempDir()
		reps[i], err = NewReplica(ReplicaConfig{Dir: dirs[i], PrimaryAddr: p.Addr(), ChunkEdges: 50, CheckpointEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer reps[i].Close(ctx)
	}
	ctl, err := NewController(ControllerConfig{Replicas: reps, Timeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Stop()

	pushAll(t, ing, edges)
	for _, r := range reps {
		waitPos(t, r, 400, 10*time.Second)
	}
	if ctl.Promoted() != nil {
		t.Fatal("controller promoted while the primary was alive")
	}

	// Primary loss; the controller must fail over within its timeout
	// plus promotion time.
	p.Close()
	if err := ing.Close(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for ctl.Promoted() == nil {
		if time.Now().After(deadline) {
			t.Fatal("controller never promoted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	winner := ctl.Promoted()
	if winner.Position() != 400 {
		t.Fatalf("promoted replica at position %d, want 400", winner.Position())
	}
	var wdir string
	for i, r := range reps {
		if r == winner {
			wdir = dirs[i]
		}
	}
	if !bytes.Equal(ckptBytes(t, wdir), offlineBytes(t, edges, 20, 4)) {
		t.Fatal("promoted checkpoint differs from offline scan")
	}
}

// TestProtoRoundTrip pins the frame codec: every message survives
// encode/decode, and a corrupted frame is rejected by checksum.
func TestProtoRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	msgs := [][]byte{
		helloMsg{version: 1, epoch: 7, pos: 12345, omega: 20, precision: 4, fresh: true}.encode(),
		metaMsg{version: 1, epoch: 7, omega: 20, precision: 4, startPos: 99, firstChunk: 2, chunkCount: 3, metaJSON: []byte(`{"edges":9}`)}.encode(),
		chunkMsg{index: 5, data: []byte("sidecar-bytes")}.encode(),
		edgesMsg{base: 42, record: []byte{1, 2, 3}}.encode(),
		heartbeatMsg{epoch: 7, pos: 10000}.encode(),
		ackMsg{pos: 9999, lastAt: -5}.encode(),
		errorMsg{code: ErrCodeResync, msg: "go resync"}.encode(),
	}
	for _, m := range msgs {
		if err := writeFrame(bw, m); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(bytes.NewReader(buf.Bytes()))
	for i, want := range msgs {
		got, err := readFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d corrupted in transit", i)
		}
	}
	h, err := decodeHello(msgs[0][1:])
	if err != nil || h.epoch != 7 || h.pos != 12345 || !h.fresh {
		t.Fatalf("hello round trip: %+v, %v", h, err)
	}
	a, err := decodeAck(msgs[5][1:])
	if err != nil || a.pos != 9999 || a.lastAt != -5 {
		t.Fatalf("ack round trip: %+v, %v", a, err)
	}
	// Flip one payload byte: the checksum must catch it.
	raw := buf.Bytes()
	raw[frameHeader+1] ^= 0x40
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(raw))); err == nil {
		t.Fatal("corrupted frame accepted")
	}
}
