package repl

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"ipin/internal/trace"
)

// ControllerConfig parameterizes a failover Controller.
type ControllerConfig struct {
	// Replicas is the candidate set the controller watches and promotes
	// from; at least one is required.
	Replicas []*Replica
	// Timeout is primary-loss detection: no replica holds a live session
	// and none heard a frame for this long (after at least one ever did)
	// means the primary is gone. 0 selects 2s.
	Timeout time.Duration
	// Every is the poll interval; 0 selects Timeout/4, floored at 50ms.
	Every time.Duration
	// PromoteTimeout bounds the promotion itself (epoch advance + sealed
	// checkpoint); 0 selects 30s.
	PromoteTimeout time.Duration
	// OnPromote fires (from the controller goroutine) after a promotion
	// completes — the embedding layer re-points intake and serving there.
	OnPromote func(*Replica)
	// Journal, when non-nil, receives promote lifecycle events.
	Journal *trace.Journal
}

// Controller is the quorum-free failover monitor: it watches the
// replicas' session liveness and last-contact clocks and, once no
// replica holds a live session and every one has been silent past the
// timeout, promotes the most-caught-up one. A live session counts as
// health on its own — a replica buried in a multi-second checkpoint
// fold reads no frames (its last-contact clock stalls) yet still holds
// an open connection a real primary completed the handshake on, and
// promoting it mid-apply would abandon a living primary. Quorum-free means
// the decision is local — the deployment must ensure only one
// controller acts on a replica set (a second would be fenced by epochs,
// not prevented; see DESIGN.md on dual-primary fencing).
type Controller struct {
	cfg      ControllerConfig
	promoted atomic.Pointer[Replica]
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewController starts watching. The controller stops itself after a
// successful promotion — one failover per controller lifetime.
func NewController(cfg ControllerConfig) (*Controller, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errNoReplicas
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Every <= 0 {
		cfg.Every = cfg.Timeout / 4
		if cfg.Every < 50*time.Millisecond {
			cfg.Every = 50 * time.Millisecond
		}
	}
	if cfg.PromoteTimeout <= 0 {
		cfg.PromoteTimeout = 30 * time.Second
	}
	c := &Controller{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	go c.watch()
	return c, nil
}

var errNoReplicas = &refuseError{msg: "repl: Controller needs at least one replica"}

// Promoted returns the replica this controller promoted, nil while the
// primary is (believed) alive.
func (c *Controller) Promoted() *Replica { return c.promoted.Load() }

// Stop halts the watch loop and waits for it.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

func (c *Controller) watch() {
	defer close(c.done)
	tick := time.NewTicker(c.cfg.Every)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		// A manual promotion elsewhere ends the watch too.
		for _, r := range c.cfg.Replicas {
			if r.Promoted() {
				c.promoted.Store(r)
				return
			}
		}
		anyContact, healthy := false, false
		now := time.Now()
		for _, r := range c.cfg.Replicas {
			lc := r.LastContact()
			if lc.IsZero() {
				continue
			}
			anyContact = true
			// An established session is evidence of a live primary even
			// when the frame loop hasn't read for a while (it may be
			// parked inside a checkpoint fold, not partitioned): the
			// replica's keepalive writer clears liveness within seconds of
			// a genuinely dead connection, so this cannot mask real loss.
			if r.SessionLive() || now.Sub(lc) < c.cfg.Timeout {
				healthy = true
			}
		}
		// Never promote before the primary was ever seen: a replica set
		// that cannot reach a primary that never existed has nothing
		// worth promoting (and the operator may still be wiring it up).
		if !anyContact || healthy {
			continue
		}
		var pick *Replica
		for _, r := range c.cfg.Replicas {
			if r.Err() != nil {
				continue
			}
			if pick == nil || r.Position() > pick.Position() {
				pick = r
			}
		}
		if pick == nil {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.PromoteTimeout)
		err := pick.Promote(ctx)
		cancel()
		if err != nil {
			c.cfg.Journal.Record(trace.EventReplPromote, "failed", 0, map[string]any{"error": err.Error()})
			continue
		}
		c.promoted.Store(pick)
		if c.cfg.OnPromote != nil {
			c.cfg.OnPromote(pick)
		}
		return
	}
}
