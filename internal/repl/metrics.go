package repl

import "ipin/internal/obs"

// Replication metric names. The primary-side series measure how far the
// attached replicas trail the emit clock (the numbers a failover
// decision is made on); the replica-side series measure apply progress
// and lifecycle transitions.
const (
	MetricSessions        = "repl_sessions"
	MetricAttaches        = "repl_attaches_total"
	MetricResyncs         = "repl_resyncs_total"
	MetricFramesSent      = "repl_frames_sent_total"
	MetricBytesSent       = "repl_bytes_sent_total"
	MetricAcks            = "repl_acks_total"
	MetricSessionsDropped = "repl_sessions_dropped_total"
	MetricFenced          = "repl_fenced_total"
	MetricLagEdges        = "repl_lag_edges"
	MetricLagBytes        = "repl_lag_bytes"
	MetricLagSegments     = "repl_lag_segments"
	MetricLastAckAge      = "repl_last_ack_age_seconds"

	MetricAppliedEdges   = "repl_applied_edges_total"
	MetricReplicaLag     = "repl_replica_lag_edges"
	MetricReplicaResyncs = "repl_replica_resyncs_total"
	MetricPrimaryLost    = "repl_primary_lost_total"
	MetricPromotions     = "repl_promotions_total"
)

// primaryMetrics bundles the primary-side instruments; over a nil
// registry every field is a nil no-op instrument. The lag gauges are
// GaugeFuncs registered by NewPrimary, because they are functions of
// session state and the clock, not push targets.
type primaryMetrics struct {
	sessions                    *obs.Gauge
	attaches, resyncs           *obs.Counter
	framesSent, bytesSent, acks *obs.Counter
	dropped, fenced             *obs.Counter
}

func newPrimaryMetrics(reg *obs.Registry) *primaryMetrics {
	return &primaryMetrics{
		sessions:   reg.Gauge(MetricSessions, "Replication sessions currently attached to this primary."),
		attaches:   reg.Counter(MetricAttaches, "Replication sessions that completed the attach handshake."),
		resyncs:    reg.Counter(MetricResyncs, "Attach attempts refused with a resync demand (position below the retained base, or epoch mismatch)."),
		framesSent: reg.Counter(MetricFramesSent, "IREP0001 frames sent to replicas."),
		bytesSent:  reg.Counter(MetricBytesSent, "Bytes sent to replicas, frame headers included."),
		acks:       reg.Counter(MetricAcks, "Position acknowledgements received from replicas."),
		dropped:    reg.Counter(MetricSessionsDropped, "Sessions dropped for falling behind the tap queue or going silent past the ack timeout."),
		fenced:     reg.Counter(MetricFenced, "Attach attempts that presented a newer epoch — this primary is fenced."),
	}
}

// replicaMetrics bundles the replica-side instruments.
type replicaMetrics struct {
	applied     *obs.Counter
	resyncs     *obs.Counter
	primaryLost *obs.Counter
	promotions  *obs.Counter
}

func newReplicaMetrics(reg *obs.Registry) *replicaMetrics {
	return &replicaMetrics{
		applied:     reg.Counter(MetricAppliedEdges, "Edges applied from the replication stream into the local ingester."),
		resyncs:     reg.Counter(MetricReplicaResyncs, "Full resyncs performed after the primary refused the replica's position."),
		primaryLost: reg.Counter(MetricPrimaryLost, "Connected-to-lost transitions observed against the primary."),
		promotions:  reg.Counter(MetricPromotions, "Promotions of this replica to primary."),
	}
}
