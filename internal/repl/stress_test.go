package repl

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"ipin/internal/stream"
)

// TestCatchUpUnderFeedLoad is the benchstream kill-the-primary shape in
// miniature: the primary is fed the whole stream as fast as Push
// accepts it while one replica follows and checkpoints by edge count —
// so the replica falls behind, its session is dropped for backpressure,
// and it must re-attach (delta or resync) repeatedly until it has
// applied everything. The regression it pins is the catch-up path
// converging under sustained overload, not just under the gentle pacing
// of the other tests.
//
// REPL_STRESS_EDGES / REPL_STRESS_NODES / REPL_STRESS_OMEGA override
// the stream shape for manual soak runs (larger shapes make each
// replica fold slower than the primary's ack timeout, which is the
// regime that exercises backpressure drops and re-attaches).
func TestCatchUpUnderFeedLoad(t *testing.T) {
	m, nodes, omega := 60_000, 2000, int64(20)
	if s := os.Getenv("REPL_STRESS_EDGES"); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			m = v
		}
	}
	if s := os.Getenv("REPL_STRESS_NODES"); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			nodes = v
		}
	}
	if s := os.Getenv("REPL_STRESS_OMEGA"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			omega = v
		}
	}
	precision := 4
	if s := os.Getenv("REPL_STRESS_PRECISION"); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			precision = v
		}
	}
	rng := rand.New(rand.NewSource(11))
	edges := testLog(rng, nodes, m)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	pdir := t.TempDir()
	ing, err := stream.New(stream.Config{
		Dir: pdir, Omega: omega, Precision: precision, NumNodes: nodes,
		CheckpointEvery: -1, IdleFlush: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPrimary(PrimaryConfig{Ingester: ing, HeartbeatEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rdir := t.TempDir()
	rep, err := NewReplica(ReplicaConfig{
		Dir: rdir, PrimaryAddr: p.Addr(),
		CheckpointEvery: -1, CheckpointEdges: max(m/5, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close(ctx)

	pushAll(t, ing, edges)
	if err := ing.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	fed := ing.Stats().Emitted

	deadline := time.Now().Add(10 * time.Minute)
	last, lastMove := int64(-1), time.Now()
	lastLog := time.Now()
	for rep.Position() < fed {
		if err := rep.Err(); err != nil {
			t.Fatalf("replica failed at %d/%d: %v", rep.Position(), fed, err)
		}
		if pos := rep.Position(); pos != last {
			last, lastMove = pos, time.Now()
		} else if time.Since(lastMove) > 90*time.Second {
			t.Fatalf("replica made no progress for 90s at %d/%d (sessions=%d)", last, fed, p.Sessions())
		}
		if testing.Verbose() && time.Since(lastLog) > 5*time.Second {
			t.Logf("catch-up %d/%d (sessions=%d)", last, fed, p.Sessions())
			lastLog = time.Now()
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at %d/%d", rep.Position(), fed)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := ing.Close(ctx); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if err := rep.Promote(ctx); err != nil {
		t.Fatal(err)
	}
	if pos := rep.Position(); pos != fed {
		t.Fatalf("promoted at %d, want %d", pos, fed)
	}
	want := offlineBytes(t, edges, omega, precision)
	if got := ckptBytes(t, rdir); !bytes.Equal(got, want) {
		t.Fatalf("promoted checkpoint diverges from the offline scan (%d vs %d bytes)", len(got), len(want))
	}
}
