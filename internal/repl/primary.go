package repl

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ipin/internal/graph"
	"ipin/internal/obs"
	"ipin/internal/stream"
	"ipin/internal/trace"
)

// PrimaryConfig parameterizes a Primary. Ingester is required; every
// other field has a usable zero value (Addr defaults to a random port,
// read back with Addr()).
type PrimaryConfig struct {
	// Ingester is the live pipeline this primary replicates. NewPrimary
	// installs the emit tap and the WAL retention floor on it; Close
	// removes them.
	Ingester *stream.Ingester
	// Addr is the TCP listen address for replica attachments; empty
	// selects "127.0.0.1:0". Ignored when Listener is set.
	Addr string
	// Listener, when non-nil, is used instead of binding Addr — for tests
	// and for processes that manage their own sockets.
	Listener net.Listener
	// HeartbeatEvery is the idle-stream heartbeat interval; 0 selects
	// 500ms. Replicas ack every heartbeat, so this also bounds how stale
	// the primary's view of replica positions can get.
	HeartbeatEvery time.Duration
	// AckTimeout drops a session that has not acknowledged anything for
	// this long — a dead replica must not hold the WAL retention floor
	// forever. 0 selects 5s, negative disables.
	AckTimeout time.Duration
	// SessionQueue bounds the per-session tap queue in frames; a session
	// that falls this far behind the emit stream is dropped (it re-attaches
	// and delta-syncs from its acknowledged position). 0 selects 1024.
	SessionQueue int
	// BatchEdges caps the edges per Edges frame; 0 selects 16384.
	BatchEdges int
	// Registry receives the repl_* primary metrics; nil disables them.
	Registry *obs.Registry
	// Journal, when non-nil, receives attach/sync lifecycle events.
	Journal *trace.Journal
}

// Primary accepts replica attachments and streams the ingester's
// emitted edge sequence to them: a directory snapshot (or the suffix
// past the replica's acknowledged position) at attach, then the live
// tap. It never blocks the ingester — slow sessions are dropped, not
// waited on.
type Primary struct {
	cfg PrimaryConfig
	ing *stream.Ingester
	ln  net.Listener
	mx  *primaryMetrics
	jr  *trace.Journal

	// fenced is set when a replica presented a NEWER epoch than the
	// ingester holds: somewhere a replica was promoted, and this process
	// is a stale primary that must stop acting as one.
	fenced atomic.Bool

	mu       sync.Mutex
	sessions map[*session]struct{}
	closed   bool
	closing  chan struct{}
	wg       sync.WaitGroup
}

// queued is one tap batch staged on a session queue: the encoded Edges
// frame plus the emit range it covers, so the writer can skip or split
// frames that overlap the attach snapshot.
type queued struct {
	base, end int64
	payload   []byte
}

// session is one attached replica connection.
type session struct {
	conn   net.Conn
	queue  chan queued
	kicked chan struct{} // closed by the tap on queue overflow
	dead   chan struct{} // closed by the reader on ack-path failure

	kickOnce sync.Once
	deadOnce sync.Once

	// sentPos is writer-goroutine local after the handshake: the emit
	// index one past the last edge sent on this session.
	sentPos int64

	sentBytes  atomic.Int64
	ackedBytes atomic.Int64
	ackPos     atomic.Int64
	ackAt      atomic.Int64 // newest acknowledged timestamp: the WAL floor unit
	ackTime    atomic.Int64 // unix nanos of the last ack (or the handshake)

	// ring maps sent emit positions to the cumulative byte counter, so
	// acks (which carry positions) can settle the byte-lag gauge.
	ringMu sync.Mutex
	ring   []posBytes
}

type posBytes struct{ end, bytes int64 }

func (s *session) kick() { s.kickOnce.Do(func() { close(s.kicked) }) }
func (s *session) die()  { s.deadOnce.Do(func() { close(s.dead) }) }

// noteSent records that everything below end is on the wire.
func (s *session) noteSent(end int64) {
	s.ringMu.Lock()
	s.ring = append(s.ring, posBytes{end: end, bytes: s.sentBytes.Load()})
	s.ringMu.Unlock()
}

// settle consumes ring entries covered by an ack.
func (s *session) settle(pos int64) {
	s.ringMu.Lock()
	i := 0
	for i < len(s.ring) && s.ring[i].end <= pos {
		i++
	}
	if i > 0 {
		s.ackedBytes.Store(s.ring[i-1].bytes)
		s.ring = append(s.ring[:0], s.ring[i:]...)
	}
	s.ringMu.Unlock()
}

const handshakeTimeout = 10 * time.Second

// NewPrimary wires the replication tap and the WAL retention floor into
// the ingester and starts accepting replica attachments.
func NewPrimary(cfg PrimaryConfig) (*Primary, error) {
	if cfg.Ingester == nil {
		return nil, fmt.Errorf("repl: PrimaryConfig.Ingester is required")
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 500 * time.Millisecond
	}
	if cfg.AckTimeout == 0 {
		cfg.AckTimeout = 5 * time.Second
	}
	if cfg.SessionQueue <= 0 {
		cfg.SessionQueue = 1024
	}
	if cfg.BatchEdges <= 0 {
		cfg.BatchEdges = 16384
	}
	ln := cfg.Listener
	if ln == nil {
		addr := cfg.Addr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		var err error
		if ln, err = net.Listen("tcp", addr); err != nil {
			return nil, err
		}
	}
	p := &Primary{
		cfg:      cfg,
		ing:      cfg.Ingester,
		ln:       ln,
		mx:       newPrimaryMetrics(cfg.Registry),
		jr:       cfg.Journal,
		sessions: make(map[*session]struct{}),
		closing:  make(chan struct{}),
	}
	cfg.Registry.GaugeFunc(MetricLagEdges, "Edges the furthest-behind attached replica trails the emit clock by.", p.lagEdges)
	cfg.Registry.GaugeFunc(MetricLagBytes, "Sent-but-unacknowledged replication bytes across attached sessions.", p.lagBytes)
	cfg.Registry.GaugeFunc(MetricLagSegments, "WAL segments beyond the first still on disk — the replication backlog in segment units.", p.lagSegments)
	cfg.Registry.GaugeFunc(MetricLastAckAge, "Seconds since the stalest attached replica last acknowledged.", p.lastAckAge)
	// Floor first, tap second: once the tap is live a session may attach,
	// and its unacknowledged position must already be holding compaction.
	p.ing.SetWALFloor(p.ackFloorAt)
	p.ing.SetEmitSink(p.tap)
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr returns the address replicas dial.
func (p *Primary) Addr() string { return p.ln.Addr().String() }

// Fenced reports whether a replica presented a newer epoch: this
// process is a stale primary and the embedding layer should stop
// routing writes to it.
func (p *Primary) Fenced() bool { return p.fenced.Load() }

// Sessions returns the number of currently attached replicas.
func (p *Primary) Sessions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.sessions)
}

// Close detaches from the ingester (tap and retention floor), stops the
// listener, closes every session, and waits for the goroutines.
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.closing)
	open := make([]*session, 0, len(p.sessions))
	for s := range p.sessions {
		open = append(open, s)
	}
	p.mu.Unlock()
	p.ing.SetEmitSink(nil)
	p.ing.SetWALFloor(nil)
	err := p.ln.Close()
	for _, s := range open {
		s.conn.Close()
	}
	p.wg.Wait()
	return err
}

// tap is the emit sink: it runs on the ingester's run loop, encodes
// each emitted batch once, and fans the frames out to every session
// without blocking — a full queue drops the session, never the run loop.
func (p *Primary) tap(base int64, batch []graph.Interaction) {
	for lo := 0; lo < len(batch); lo += p.cfg.BatchEdges {
		hi := min(lo+p.cfg.BatchEdges, len(batch))
		q := queued{
			base:    base + int64(lo),
			end:     base + int64(hi),
			payload: edgesMsg{base: uint64(base + int64(lo)), record: stream.EncodeBatch(batch[lo:hi])}.encode(),
		}
		p.mu.Lock()
		for s := range p.sessions {
			select {
			case s.queue <- q:
			default:
				delete(p.sessions, s)
				p.mx.sessions.Dec()
				p.mx.dropped.Inc()
				s.kick()
			}
		}
		p.mu.Unlock()
	}
}

// ackFloorAt is the WAL retention floor: the minimum acknowledged
// timestamp across attached sessions. With no sessions there is no
// replication constraint. Runs on the ingester's run loop.
func (p *Primary) ackFloorAt() int64 {
	floor := int64(math.MaxInt64)
	p.mu.Lock()
	for s := range p.sessions {
		if at := s.ackAt.Load(); at < floor {
			floor = at
		}
	}
	p.mu.Unlock()
	return floor
}

func (p *Primary) lagEdges() int64 {
	emitted := p.ing.Stats().Emitted
	var lag int64
	p.mu.Lock()
	for s := range p.sessions {
		if l := emitted - s.ackPos.Load(); l > lag {
			lag = l
		}
	}
	p.mu.Unlock()
	return lag
}

func (p *Primary) lagBytes() int64 {
	var lag int64
	p.mu.Lock()
	for s := range p.sessions {
		lag += s.sentBytes.Load() - s.ackedBytes.Load()
	}
	p.mu.Unlock()
	return lag
}

func (p *Primary) lagSegments() int64 {
	names, _ := filepath.Glob(filepath.Join(p.ing.Dir(), "wal-*.seg"))
	if len(names) <= 1 {
		return 0
	}
	return int64(len(names) - 1)
}

func (p *Primary) lastAckAge() int64 {
	oldest := int64(0)
	p.mu.Lock()
	for s := range p.sessions {
		if at := s.ackTime.Load(); oldest == 0 || at < oldest {
			oldest = at
		}
	}
	p.mu.Unlock()
	if oldest == 0 {
		return 0
	}
	return int64(time.Since(time.Unix(0, oldest)).Seconds())
}

func (p *Primary) accept() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.serve(conn)
	}
}

func (p *Primary) serve(conn net.Conn) {
	defer p.wg.Done()
	defer conn.Close()
	s := &session{
		conn:   conn,
		queue:  make(chan queued, p.cfg.SessionQueue),
		kicked: make(chan struct{}),
		dead:   make(chan struct{}),
	}
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	if err := p.handshake(s, br, bw); err != nil {
		p.unregister(s)
		return
	}
	p.wg.Add(1)
	go p.readAcks(s, br)
	p.writer(s, bw)
	p.unregister(s)
}

// refuseError marks a handshake that was answered with an Error frame
// (the session then ends cleanly, from the primary's point of view).
type refuseError struct{ msg string }

func (e *refuseError) Error() string { return e.msg }

func (p *Primary) refuse(bw *bufio.Writer, code uint64, msg string) error {
	if code == ErrCodeResync {
		p.mx.resyncs.Inc()
	}
	if err := writeFrame(bw, errorMsg{code: code, msg: msg}.encode()); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return &refuseError{msg: msg}
}

// handshake validates the replica's Hello, registers the live tap,
// reads a directory snapshot, and ships the sync plan: Meta (+ raw
// chunk sidecars when the replica is fresh) followed by the backlog of
// Edges frames up to the snapshot end. The tap is registered BEFORE the
// snapshot read, so the two sources overlap rather than gap; the writer
// resolves the overlap by emit positions.
func (p *Primary) handshake(s *session, br *bufio.Reader, bw *bufio.Writer) error {
	s.conn.SetDeadline(time.Now().Add(handshakeTimeout))
	var magic [len(protoMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return err
	}
	if string(magic[:]) != protoMagic {
		return fmt.Errorf("repl: bad connection magic %q", magic)
	}
	if _, err := bw.WriteString(protoMagic); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	payload, err := readFrame(br)
	if err != nil {
		return err
	}
	if len(payload) == 0 || payload[0] != frHello {
		return fmt.Errorf("repl: expected Hello, got frame type %d", payload[0])
	}
	hello, err := decodeHello(payload[1:])
	if err != nil {
		return err
	}
	myEpoch := p.ing.Epoch()
	if hello.version != protoVersion {
		return p.refuse(bw, ErrCodeConfig, fmt.Sprintf("protocol version %d not supported", hello.version))
	}
	if hello.epoch > myEpoch {
		// The replica lived through a promotion this primary missed: we
		// are the stale side. Refuse AND remember — the embedding layer
		// reads Fenced() to stop routing writes here.
		p.fenced.Store(true)
		p.mx.fenced.Inc()
		p.jr.Record(trace.EventReplLost, "fenced", 0, map[string]any{
			"peer_epoch": hello.epoch, "epoch": myEpoch,
		})
		return p.refuse(bw, ErrCodeFenced, fmt.Sprintf("peer epoch %d is newer than primary epoch %d", hello.epoch, myEpoch))
	}
	if !hello.fresh {
		if hello.epoch != myEpoch {
			return p.refuse(bw, ErrCodeResync, fmt.Sprintf("replica epoch %d does not match primary epoch %d", hello.epoch, myEpoch))
		}
		if hello.omega != uint64(p.ing.Omega()) || hello.precision != uint64(p.ing.Precision()) {
			return p.refuse(bw, ErrCodeConfig, fmt.Sprintf("replica omega/precision %d/%d does not match primary %d/%d",
				hello.omega, hello.precision, p.ing.Omega(), p.ing.Precision()))
		}
	}
	if err := p.register(s); err != nil {
		return err
	}
	snap, err := stream.ReadSnapshot(p.ing.Dir())
	if err != nil {
		return err
	}
	startPos := int64(hello.pos)
	if hello.fresh {
		startPos = snap.Base + snap.ChunkEdges
	} else if startPos < snap.Base {
		return p.refuse(bw, ErrCodeResync, fmt.Sprintf("position %d is below the retained base %d", startPos, snap.Base))
	}
	meta := metaMsg{
		version:   protoVersion,
		epoch:     myEpoch,
		omega:     uint64(p.ing.Omega()),
		precision: uint64(p.ing.Precision()),
		startPos:  uint64(startPos),
	}
	if hello.fresh {
		meta.firstChunk = uint64(snap.FirstChunk)
		meta.chunkCount = uint64(len(snap.ChunkFiles))
		meta.metaJSON = snap.MetaJSON
	}
	// From here the handshake only writes, and the volume scales with
	// the replica's lag — a fresh attach ships every sidecar plus the
	// whole retained backlog. The deadline therefore rolls per frame:
	// it bounds how long any single write may stall (a wedged replica),
	// not the total transfer, so a large but steadily-draining sync
	// cannot be killed by its own size.
	s.conn.SetWriteDeadline(time.Now().Add(handshakeTimeout))
	if err := p.send(s, bw, meta.encode()); err != nil {
		return err
	}
	if hello.fresh {
		for i, name := range snap.ChunkFiles {
			// A sidecar retired between the snapshot and this read kills
			// the session; the replica retries and gets a fresh snapshot.
			data, err := os.ReadFile(name)
			if err != nil {
				return err
			}
			s.conn.SetWriteDeadline(time.Now().Add(handshakeTimeout))
			if err := p.send(s, bw, chunkMsg{index: uint64(snap.FirstChunk + i), data: data}.encode()); err != nil {
				return err
			}
		}
	}
	// Everything below startPos is on the replica already — that is the
	// session's implicit first ack, and it holds the WAL floor from the
	// moment of attach.
	s.ackPos.Store(startPos)
	s.ackAt.Store(snapTimestampAt(snap, startPos))
	s.ackTime.Store(time.Now().UnixNano())
	s.sentPos = startPos
	if startPos < snap.End() {
		edges := snap.Edges[startPos-snap.Base:]
		for lo := 0; lo < len(edges); lo += p.cfg.BatchEdges {
			hi := min(lo+p.cfg.BatchEdges, len(edges))
			base := startPos + int64(lo)
			s.conn.SetWriteDeadline(time.Now().Add(handshakeTimeout))
			if err := p.send(s, bw, edgesMsg{base: uint64(base), record: stream.EncodeBatch(edges[lo:hi])}.encode()); err != nil {
				return err
			}
			s.noteSent(base + int64(hi-lo))
		}
		s.sentPos = snap.End()
	}
	s.conn.SetWriteDeadline(time.Now().Add(handshakeTimeout))
	if err := bw.Flush(); err != nil {
		return err
	}
	s.conn.SetDeadline(time.Time{})
	p.mx.attaches.Inc()
	p.jr.Record(trace.EventReplAttach, map[bool]string{true: "fresh", false: "delta"}[hello.fresh], 0, map[string]any{
		"start_pos": startPos, "end_pos": s.sentPos, "chunks": len(snap.ChunkFiles),
	})
	return nil
}

// snapTimestampAt returns the timestamp of the last edge at or below
// emit position pos, in snapshot coordinates — math.MinInt64 when the
// position precedes everything the directory retains a clock for.
func snapTimestampAt(snap *stream.Snapshot, pos int64) int64 {
	if i := pos - snap.Base; i > 0 {
		if i > int64(len(snap.Edges)) {
			i = int64(len(snap.Edges))
		}
		if i > 0 {
			return int64(snap.Edges[i-1].At)
		}
	}
	return snap.BaseLastAt
}

func (p *Primary) register(s *session) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("repl: primary closed")
	}
	p.sessions[s] = struct{}{}
	p.mx.sessions.Inc()
	return nil
}

func (p *Primary) unregister(s *session) {
	p.mu.Lock()
	if _, ok := p.sessions[s]; ok {
		delete(p.sessions, s)
		p.mx.sessions.Dec()
	}
	p.mu.Unlock()
}

// send frames one payload and counts it; the caller flushes.
func (p *Primary) send(s *session, bw *bufio.Writer, payload []byte) error {
	if err := writeFrame(bw, payload); err != nil {
		return err
	}
	n := int64(len(payload)) + frameHeader
	s.sentBytes.Add(n)
	p.mx.framesSent.Inc()
	p.mx.bytesSent.Add(n)
	return nil
}

// readAcks is the session's reader half: it consumes Ack frames and
// publishes the replica's position. A silent replica (no ack within
// AckTimeout) is dropped so it cannot hold the WAL floor indefinitely.
func (p *Primary) readAcks(s *session, br *bufio.Reader) {
	defer p.wg.Done()
	defer s.die()
	for {
		if p.cfg.AckTimeout > 0 {
			s.conn.SetReadDeadline(time.Now().Add(p.cfg.AckTimeout))
		}
		payload, err := readFrame(br)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				p.mx.dropped.Inc()
			}
			return
		}
		if len(payload) == 0 || payload[0] != frAck {
			return
		}
		ack, err := decodeAck(payload[1:])
		if err != nil {
			return
		}
		// Positions only move forward: a liveness re-ack of an already
		// acknowledged position refreshes the timer but must never drag
		// the WAL retention floor backwards.
		if pos := int64(ack.pos); pos >= s.ackPos.Load() {
			s.ackPos.Store(pos)
			s.ackAt.Store(ack.lastAt)
			s.settle(pos)
		}
		s.ackTime.Store(time.Now().UnixNano())
		p.mx.acks.Inc()
	}
}

// writer is the session's writer half after the handshake: it forwards
// tap frames (skipping or splitting any overlap with the snapshot it
// already sent) and heartbeats the stream when idle.
func (p *Primary) writer(s *session, bw *bufio.Writer) {
	hb := time.NewTicker(p.cfg.HeartbeatEvery)
	defer hb.Stop()
	for {
		select {
		case q := <-s.queue:
			if err := p.forward(s, bw, q); err != nil {
				s.die()
				return
			}
		drain:
			for {
				select {
				case q := <-s.queue:
					if err := p.forward(s, bw, q); err != nil {
						s.die()
						return
					}
				default:
					break drain
				}
			}
			if err := p.flush(s, bw); err != nil {
				s.die()
				return
			}
		case <-hb.C:
			msg := heartbeatMsg{epoch: p.ing.Epoch(), pos: uint64(p.ing.Stats().Emitted)}
			if err := p.send(s, bw, msg.encode()); err != nil {
				s.die()
				return
			}
			if err := p.flush(s, bw); err != nil {
				s.die()
				return
			}
		case <-s.kicked:
			return
		case <-s.dead:
			return
		case <-p.closing:
			return
		}
	}
}

func (p *Primary) flush(s *session, bw *bufio.Writer) error {
	s.conn.SetWriteDeadline(time.Now().Add(max(10*p.cfg.HeartbeatEvery, 5*time.Second)))
	return bw.Flush()
}

// forward sends one tap batch, resolving overlap with what the session
// already has: frames fully below sentPos are skipped (the snapshot
// covered them), a frame straddling the boundary is split and re-based.
func (p *Primary) forward(s *session, bw *bufio.Writer, q queued) error {
	if q.end <= s.sentPos {
		return nil
	}
	if q.base > s.sentPos {
		return fmt.Errorf("repl: tap gap: session at %d, batch starts at %d", s.sentPos, q.base)
	}
	payload := q.payload
	if q.base < s.sentPos {
		em, err := decodeEdges(q.payload[1:])
		if err != nil {
			return err
		}
		edges, err := stream.DecodeBatch(em.record)
		if err != nil {
			return err
		}
		payload = edgesMsg{base: uint64(s.sentPos), record: stream.EncodeBatch(edges[s.sentPos-q.base:])}.encode()
	}
	if err := p.send(s, bw, payload); err != nil {
		return err
	}
	s.sentPos = q.end
	s.noteSent(q.end)
	return nil
}
