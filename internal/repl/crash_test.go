package repl

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"ipin/internal/stream"

	"ipin/internal/graph"
)

// The crash matrix: sever the replication stream at a frame boundary,
// mid-frame, and concurrently with a replica checkpoint, then promote.
// In every case the promoted checkpoint must be byte-identical to the
// offline scan over exactly the prefix the replica applied — a torn
// frame is discarded by the CRC framing, never half-applied.

// cutProxy relays one primary→replica session and severs both
// directions abruptly once `limit` bytes have flowed toward the
// replica. Further dials are refused, as a crashed primary's would be.
type cutProxy struct {
	ln   net.Listener
	addr string
}

func newCutProxy(t *testing.T, target string, limit int64) *cutProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cp := &cutProxy{ln: ln, addr: ln.Addr().String()}
	t.Cleanup(func() { ln.Close() })
	go func() {
		client, err := ln.Accept()
		if err != nil {
			return
		}
		ln.Close()
		upstream, err := net.Dial("tcp", target)
		if err != nil {
			client.Close()
			return
		}
		go io.Copy(upstream, client)
		io.Copy(client, io.LimitReader(upstream, limit))
		upstream.Close()
		client.Close()
	}()
	return cp
}

// feed pushes edges on a goroutine, pausing briefly between batches so
// the kill lands mid-stream; it stops quietly once the ingester dies.
func feed(ing *stream.Ingester, edges []graph.Interaction) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i, e := range edges {
			if ing.Push(e) != nil {
				return
			}
			if i%200 == 199 {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	return done
}

// stablePos waits for the replica's applied position to stop moving.
func stablePos(t *testing.T, r *Replica) int64 {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	last, since := r.Position(), time.Now()
	for time.Since(since) < 300*time.Millisecond {
		if time.Now().After(deadline) {
			t.Fatal("replica position never settled")
		}
		time.Sleep(20 * time.Millisecond)
		if p := r.Position(); p != last {
			last, since = p, time.Now()
		}
	}
	return last
}

// checkPromotedPrefix promotes the replica and asserts its sealed
// checkpoint equals the offline scan over the applied prefix.
func checkPromotedPrefix(t *testing.T, rep *Replica, rdir string, edges []graph.Interaction) {
	t.Helper()
	ctx := testCtx(t)
	if err := rep.Promote(ctx); err != nil {
		t.Fatal(err)
	}
	p := rep.Position()
	if p <= 0 || p > int64(len(edges)) {
		t.Fatalf("implausible applied prefix %d of %d", p, len(edges))
	}
	t.Logf("promoted at applied prefix %d/%d", p, len(edges))
	if !bytes.Equal(ckptBytes(t, rdir), offlineBytes(t, edges[:p], 20, 4)) {
		t.Fatal("promoted checkpoint differs from offline scan over the applied prefix")
	}
}

// TestCrashFrameBoundary: the primary process dies mid-stream; open
// TCP sessions flush at frame boundaries, so the replica holds a clean
// prefix.
func TestCrashFrameBoundary(t *testing.T) {
	ctx := testCtx(t)
	rng := rand.New(rand.NewSource(81))
	edges := testLog(rng, 40, 5000)
	pdir, rdir := t.TempDir(), t.TempDir()

	ing, err := stream.New(stream.Config{Dir: pdir, Omega: 20, Precision: 4, ChunkEdges: 100, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPrimary(PrimaryConfig{Ingester: ing, HeartbeatEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(ReplicaConfig{Dir: rdir, PrimaryAddr: p.Addr(), ChunkEdges: 100, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close(ctx)

	fed := feed(ing, edges)
	waitPos(t, rep, 500, 10*time.Second)
	// Kill the primary while the feed is (likely) still in flight.
	p.Close()
	if err := ing.Close(ctx); err != nil {
		t.Fatal(err)
	}
	<-fed
	stablePos(t, rep)
	checkPromotedPrefix(t, rep, rdir, edges)
}

// TestCrashTornFrame: the stream is severed mid-frame. The partial
// frame fails its checksum, is discarded whole, and the replica
// promotes from the last complete frame.
func TestCrashTornFrame(t *testing.T) {
	ctx := testCtx(t)
	rng := rand.New(rand.NewSource(82))
	edges := testLog(rng, 40, 5000)
	pdir, rdir := t.TempDir(), t.TempDir()

	ing, err := stream.New(stream.Config{Dir: pdir, Omega: 20, Precision: 4, ChunkEdges: 100, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close(ctx)
	p, err := NewPrimary(PrimaryConfig{Ingester: ing, HeartbeatEvery: 20 * time.Millisecond, BatchEdges: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// An odd byte budget: the cut cannot land on a frame boundary for
	// every frame, and with 64-edge batches it lands inside one.
	proxy := newCutProxy(t, p.Addr(), 40<<10+7)
	rep, err := NewReplica(ReplicaConfig{Dir: rdir, PrimaryAddr: proxy.addr, ChunkEdges: 100, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close(ctx)

	<-feed(ing, edges)
	stablePos(t, rep)
	checkPromotedPrefix(t, rep, rdir, edges)
}

// TestCrashDuringReplicaCheckpoint: the primary dies while the replica
// is checkpointing its own fold cache; promotion seals a consistent
// state regardless.
func TestCrashDuringReplicaCheckpoint(t *testing.T) {
	ctx := testCtx(t)
	rng := rand.New(rand.NewSource(83))
	edges := testLog(rng, 40, 5000)
	pdir, rdir := t.TempDir(), t.TempDir()

	ing, err := stream.New(stream.Config{Dir: pdir, Omega: 20, Precision: 4, ChunkEdges: 100, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPrimary(PrimaryConfig{Ingester: ing, HeartbeatEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(ReplicaConfig{Dir: rdir, PrimaryAddr: p.Addr(), ChunkEdges: 100, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close(ctx)
	if err := rep.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	// Hammer replica checkpoints concurrently with apply and the kill.
	ckptStop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-ckptStop:
				return
			default:
			}
			if in := rep.Ingester(); in != nil {
				in.Checkpoint(ctx)
			}
		}
	}()

	fed := feed(ing, edges)
	waitPos(t, rep, 500, 10*time.Second)
	p.Close()
	if err := ing.Close(ctx); err != nil {
		t.Fatal(err)
	}
	<-fed
	stablePos(t, rep)
	close(ckptStop)
	wg.Wait()
	checkPromotedPrefix(t, rep, rdir, edges)
}
