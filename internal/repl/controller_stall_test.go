package repl

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// stallPrimary is a protocol-level fake primary: it completes the
// handshake and sends an empty sync plan, then goes frame-silent while
// holding the connection open. From a controller's point of view this
// is indistinguishable from a replica parked inside a multi-second
// checkpoint fold — the frame loop reads nothing, so LastContact goes
// stale — except the session is demonstrably alive.
type stallPrimary struct {
	ln    net.Listener
	mu    sync.Mutex
	conns []net.Conn
	done  chan struct{}
}

func newStallPrimary(t *testing.T) *stallPrimary {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &stallPrimary{ln: ln, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, conn)
			s.mu.Unlock()
			go s.serve(conn)
		}
	}()
	return s
}

func (s *stallPrimary) serve(conn net.Conn) error {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	if _, err := bw.WriteString(protoMagic); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var magic [len(protoMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return err
	}
	payload, err := readFrame(br)
	if err != nil {
		return err
	}
	if len(payload) == 0 || payload[0] != frHello {
		return fmt.Errorf("expected Hello, got %v", payload)
	}
	m := metaMsg{version: protoVersion, epoch: 1, omega: 20, precision: 4}
	if err := writeFrame(bw, m.encode()); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Silence from here: drain the replica's acks (frame-loop and
	// keepalive) so nothing backs up, send nothing back.
	for {
		if _, err := readFrame(br); err != nil {
			return err
		}
	}
}

func (s *stallPrimary) kill() {
	s.ln.Close()
	s.mu.Lock()
	for _, c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	<-s.done
}

// TestControllerIgnoresApplyStall pins the liveness-vs-progress split
// on the failover side: a replica whose frame loop reads nothing for
// far longer than the controller Timeout must NOT be promoted while its
// session to the primary is still up (the stall is a fold, not a dead
// primary), and MUST be promoted once the session actually dies.
func TestControllerIgnoresApplyStall(t *testing.T) {
	ctx := testCtx(t)
	prim := newStallPrimary(t)

	rep, err := NewReplica(ReplicaConfig{
		Dir: t.TempDir(), PrimaryAddr: prim.ln.Addr().String(),
		HeartbeatTimeout: time.Minute, CheckpointEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close(ctx)

	attach := time.Now().Add(10 * time.Second)
	for !rep.SessionLive() || rep.LastContact().IsZero() {
		if err := rep.Err(); err != nil {
			t.Fatalf("replica failed during attach: %v", err)
		}
		if time.Now().After(attach) {
			t.Fatal("replica never attached to the fake primary")
		}
		time.Sleep(time.Millisecond)
	}

	const timeout = 300 * time.Millisecond
	ctl, err := NewController(ControllerConfig{
		Replicas: []*Replica{rep}, Timeout: timeout, Every: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Stop()

	// Frame-silent stretch, many multiples of the controller Timeout:
	// LastContact goes stale but the session stays up, so no promotion.
	quiet := time.Now().Add(5 * timeout)
	for time.Now().Before(quiet) {
		if p := ctl.Promoted(); p != nil {
			t.Fatalf("controller promoted during an apply stall with a live session (age %v)",
				time.Since(rep.LastContact()))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if age := time.Since(rep.LastContact()); age < timeout {
		t.Fatalf("stall did not outlive the controller timeout (contact age %v)", age)
	}
	if !rep.SessionLive() {
		t.Fatal("session dropped during the quiet stretch; the stall was not the only signal")
	}

	// Now the primary really dies: the session goes down, dials are
	// refused, and the controller must promote.
	prim.kill()
	promoted := time.Now().Add(15 * time.Second)
	for ctl.Promoted() == nil {
		if time.Now().After(promoted) {
			t.Fatalf("controller never promoted after the primary died (session live=%v, contact age %v)",
				rep.SessionLive(), time.Since(rep.LastContact()))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !rep.Promoted() {
		t.Fatal("controller reports a promotion the replica does not")
	}
}
