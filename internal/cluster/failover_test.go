package cluster

import (
	"context"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"ipin/internal/core"
	"ipin/internal/repl"
)

// TestShardFailoverGenerationContinuity runs the full per-shard failover
// story: shard 0 is replicated to a WAL-shipping replica; the shard
// dies; the replica promotes; its applied state re-enters serving
// through Gather.Publish on a fresh gather whose generation vector was
// resumed with ResumeGeneration. Every query answer must be
// byte-identical to the pre-failover frontend, and the cluster
// generation must be continuous — strictly higher after the failover
// publish, never reset.
func TestShardFailoverGenerationContinuity(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	slots := DefaultSlotMap(2)
	edges := bipartite(2000, 91, slots, 0)

	cl, err := New(Config{Shards: 2, Dir: t.TempDir(), Slots: slots, Stream: testStreamConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close(ctx)
	// Shard 0's replica follows its ingester from the first edge.
	p, err := repl.NewPrimary(repl.PrimaryConfig{Ingester: cl.Shard(0), HeartbeatEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var applied atomic.Pointer[core.ApproxSummaries]
	rep, err := repl.NewReplica(repl.ReplicaConfig{
		Dir: t.TempDir(), PrimaryAddr: p.Addr(),
		NumNodes: testNodes, ProfileWindow: testOmega, TopK: 5, CheckpointEvery: -1,
		Publish: func(s *core.ApproxSummaries) { applied.Store(s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close(ctx)

	for _, e := range edges {
		if err := cl.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	shard0Edges := cl.Shard(0).Stats().Emitted
	deadline := time.Now().Add(10 * time.Second)
	for rep.Position() < shard0Edges {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at %d/%d", rep.Position(), shard0Edges)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Reference answers and generation vector before the failure.
	fe := NewFrontend(cl.Gather())
	paths := []string{
		"/influence?node=3",
		"/spread?seeds=0,1,2,3",
		"/topk?k=5",
		"/spreadby?seeds=0,1,2&deadline=1500",
	}
	before := make(map[string]string, len(paths))
	for _, path := range paths {
		code, body := get(t, fe.Handler(), path)
		if code != http.StatusOK {
			t.Fatalf("%s before failover: %d (%s)", path, code, body)
		}
		before[path] = body
	}
	gens := cl.Gather().Generations()
	genBefore := cl.Gather().Generation()

	// Shard 0 dies: its replication listener and its ingester both go.
	p.Close()
	if err := cl.Shard(0).Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rep.Promote(ctx); err != nil {
		t.Fatal(err)
	}

	// The replica box assembles its own serving stack: a fresh gather
	// resumed at the generation vector it last observed, shard 0's slot
	// fed by the promoted state, shard 1's by the survivor.
	g2 := newGather(2, newMetrics(nil, 2))
	for i, gen := range gens {
		g2.ResumeGeneration(i, gen)
	}
	if g2.Generation() != genBefore {
		t.Fatalf("resumed generation %d, want %d", g2.Generation(), genBefore)
	}
	// Promote sealed a checkpoint, so the Publish hook has fired with the
	// replica's final applied state.
	promoted := applied.Load()
	if promoted == nil {
		t.Fatal("replica never published")
	}
	g2.Publish(0, promoted)
	g2.Publish(1, cl.Gather().View().parts[1])
	if g2.Generation() != genBefore+2 {
		t.Fatalf("post-failover generation %d, want %d", g2.Generation(), genBefore+2)
	}
	// ResumeGeneration never moves a counter backward.
	g2.ResumeGeneration(0, 1)
	if g2.Generation() != genBefore+2 {
		t.Fatal("ResumeGeneration moved a counter backward")
	}

	fe2 := NewFrontend(g2)
	for _, path := range paths {
		code, body := get(t, fe2.Handler(), path)
		if code != http.StatusOK {
			t.Fatalf("%s after failover: %d (%s)", path, code, body)
		}
		if body != before[path] {
			t.Fatalf("%s diverged across failover:\n before: %s\n after:  %s", path, before[path], body)
		}
	}
}
