package cluster

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ipin/internal/core"
	"ipin/internal/graph"
	"ipin/internal/serve"
	"ipin/internal/stream"
)

// The merge-identity property the cluster is built around: for streams
// without cross-shard multi-hop channels — here bipartite streams, whose
// source and destination node sets are disjoint — every scatter-gather
// answer is byte-identical to a single-node deployment over the whole
// stream, for every shard count and every slot map. The comparison is
// against a REAL single-node stack (stream.Ingester publishing into
// serve.Server), route by route, on the exact HTTP bytes.

const (
	testSrcs  = 300
	testDsts  = 500
	testNodes = testSrcs + testDsts
	testEdges = 4000
	testOmega = int64(800)
)

// bipartite generates a deterministic stream with sources in [0, srcs)
// and destinations in [srcs, srcs+dsts), strictly increasing timestamps
// throughout (the emitted log must be strictly increasing; equal stamps
// would be de-tie bumped differently per deployment).
//
// When tailShards > 0, the stream ends with a tail crafted so the
// merged top-k view is comparable byte-for-byte: after the body comes a
// quiet gap of a full profile window, then one burst per shard — a
// source owned by that shard contacting s+2 distinct destinations on
// consecutive ticks. Each shard's profile watermark lands inside the
// burst region, and because the gap empties the trailing window of body
// edges, evaluating a node's score at its owner's watermark or at the
// global last tick counts exactly the same contacts.
func bipartite(edges int, seed int64, slots SlotMap, tailShards int) []graph.Interaction {
	rng := rand.New(rand.NewSource(seed))
	tailCount := 0
	for s := 0; s < tailShards; s++ {
		tailCount += s + 2
	}
	body := edges - tailCount
	out := make([]graph.Interaction, edges)
	for i := 0; i < body; i++ {
		out[i] = graph.Interaction{
			Src: graph.NodeID(rng.Intn(testSrcs)),
			Dst: graph.NodeID(testSrcs + rng.Intn(testDsts)),
			At:  graph.Time(i + 1),
		}
	}
	if tailShards == 0 {
		return out
	}
	// One source per shard for the tail bursts.
	bySrc := make([]graph.NodeID, tailShards)
	seen := make([]bool, tailShards)
	for u := 0; u < testSrcs; u++ {
		sh := slots.ShardOf(graph.NodeID(u))
		bySrc[sh], seen[sh] = graph.NodeID(u), true
	}
	for sh, ok := range seen {
		if !ok {
			panic(fmt.Sprintf("no test source owned by shard %d; widen testSrcs", sh))
		}
	}
	t := graph.Time(body) + graph.Time(testOmega) // quiet gap of one window
	idx := body
	for s := 0; s < tailShards; s++ {
		for j := 0; j < s+2; j++ {
			t++
			out[idx] = graph.Interaction{
				Src: bySrc[s],
				Dst: graph.NodeID(testSrcs + (s*37+j*11)%testDsts),
				At:  t,
			}
			idx++
		}
	}
	return out
}

func testStreamConfig() stream.Config {
	return stream.Config{
		Omega:           testOmega,
		NumNodes:        testNodes,
		CheckpointEvery: -1, // forced checkpoints only: deterministic folds
		ProfileWindow:   testOmega,
		TopK:            5,
	}
}

// startSingle runs the reference deployment: one ingester over the whole
// stream, publishing into a query server.
func startSingle(t *testing.T, edges []graph.Interaction) (*stream.Ingester, *serve.Server) {
	t.Helper()
	srv := serve.New(serve.Config{})
	cfg := testStreamConfig()
	cfg.Dir = t.TempDir()
	cfg.Publish = srv.LoadApprox
	in, err := stream.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = in.Close(context.Background()) })
	for _, e := range edges {
		if err := in.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	return in, srv
}

func startCluster(t *testing.T, shards int, slots SlotMap, edges []graph.Interaction) *Ingester {
	t.Helper()
	c, err := New(Config{Shards: shards, Slots: slots, Dir: t.TempDir(), Stream: testStreamConfig()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close(context.Background()) })
	for _, e := range edges {
		if err := c.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	return c
}

// get performs one request against h and returns status and body.
func get(t *testing.T, h http.Handler, url string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	return rec.Code, rec.Body.String()
}

// queryBattery covers every shared route, success and error paths.
func queryBattery() []string {
	mid := testOmega / 2
	return []string{
		"/influence?node=0",
		fmt.Sprintf("/influence?node=%d", testSrcs-1),
		fmt.Sprintf("/influence?node=%d", testSrcs), // a pure destination
		fmt.Sprintf("/influence?node=%d", testNodes-1),
		"/influence?node=bogus",                      // 400
		fmt.Sprintf("/influence?node=%d", testNodes), // 404
		"/spread?seeds=0,1,2,3,4",
		fmt.Sprintf("/spread?seeds=7,%d,42,%d", testSrcs+3, testNodes-1),
		"/spread?seeds=5,5,5", // canonicalization
		"/spread?seeds=",      // 400
		"/topk?k=1",
		"/topk?k=5",
		"/topk?k=0", // 400
		fmt.Sprintf("/spreadby?seeds=0,1,2&deadline=%d", mid),
		fmt.Sprintf("/spreadby?seeds=10,11&deadline=%d", testEdges),
		fmt.Sprintf("/spreadwindow?seeds=0,1,2&at=%d", mid),
		fmt.Sprintf("/spreadwindow?seeds=0,1,2&at=%d&horizon=%d", mid, testOmega/4),
		"/spreadwindow?seeds=0&at=nope", // 400
		"/stats",
	}
}

// assertSameAnswers compares every battery query byte-for-byte between
// the single-node server and the cluster frontend.
func assertSameAnswers(t *testing.T, label string, single, merged http.Handler) {
	t.Helper()
	for _, q := range queryBattery() {
		wantCode, wantBody := get(t, single, q)
		gotCode, gotBody := get(t, merged, q)
		if gotCode != wantCode || gotBody != wantBody {
			t.Errorf("%s: %s:\n single: %d %s merged: %d %s", label, q, wantCode, wantBody, gotCode, gotBody)
		}
	}
}

func singleHandler(srv *serve.Server) http.Handler {
	mux := http.NewServeMux()
	srv.Register(mux)
	return mux
}

func TestScatterGatherIdentity(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 7} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			slots := DefaultSlotMap(shards)
			edges := bipartite(testEdges, 1, slots, shards)
			singleIn, srv := startSingle(t, edges)
			c := startCluster(t, shards, nil, edges)

			assertSameAnswers(t, "default map", singleHandler(srv), NewFrontend(c.Gather()).Handler())

			// The merged live top-k view: per-node scores are computed
			// entirely from the owner's substream and every shard's
			// watermark sits on the same final tick, so entries,
			// coverage, and watermark match the single-node view.
			want, got := singleIn.TopK(), c.TopK()
			if want == nil || got == nil {
				t.Fatalf("nil top-k view: single=%v cluster=%v", want, got)
			}
			if !reflect.DeepEqual(want.Entries, got.Entries) {
				t.Errorf("top-k entries:\n single: %+v\ncluster: %+v", want.Entries, got.Entries)
			}
			if want.CoveredEdges != got.CoveredEdges || want.LastAt != got.LastAt {
				t.Errorf("top-k provenance: single covered=%d last=%d, cluster covered=%d last=%d",
					want.CoveredEdges, want.LastAt, got.CoveredEdges, got.LastAt)
			}
		})
	}
}

// TestScatterGatherIdentitySkewed repeats the identity check under a
// deliberately unbalanced slot map: shard 0 owns almost the whole
// keyspace and the rest share scraps. Identity must not depend on
// balance.
func TestScatterGatherIdentitySkewed(t *testing.T) {
	const shards = 3
	slots := make(SlotMap, Slots)
	for s := range slots {
		if s%101 < shards-1 {
			slots[s] = s%101 + 1
		}
	}
	if err := slots.Validate(shards); err != nil {
		t.Fatal(err)
	}
	edges := bipartite(testEdges, 2, slots, 0)
	_, srv := startSingle(t, edges)
	c := startCluster(t, shards, slots, edges)
	assertSameAnswers(t, "skewed map", singleHandler(srv), NewFrontend(c.Gather()).Handler())
}

// TestOwnerSubstreamIdentity pins the normative per-shard guarantee on a
// GENERAL stream (sources and destinations drawn from the same node
// set, so cross-shard multi-hop channels exist): every shard's
// checkpoint is byte-identical to the offline one-pass scan over
// exactly the substream the router sent it. This is the exact statement
// of DESIGN.md's merge-semantics section — per-shard state is always
// exact for its substream, whatever the stream's shape.
func TestOwnerSubstreamIdentity(t *testing.T) {
	const shards = 3
	rng := rand.New(rand.NewSource(3))
	edges := make([]graph.Interaction, testEdges)
	for i := range edges {
		edges[i] = graph.Interaction{
			Src: graph.NodeID(rng.Intn(testNodes)),
			Dst: graph.NodeID(rng.Intn(testNodes)),
			At:  graph.Time(i + 1),
		}
	}
	c := startCluster(t, shards, nil, edges)
	if err := c.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < shards; i++ {
		sub := graph.New(testNodes)
		for _, e := range edges {
			if c.Route(e.Src) == i {
				sub.Add(e.Src, e.Dst, e.At)
			}
		}
		offline, err := core.ComputeApprox(sub, testOmega, core.DefaultPrecision)
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if _, err := offline.WriteTo(&want); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(c.cfg.Dir, fmt.Sprintf("shard-%03d", i), stream.CheckpointName))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("shard %d checkpoint differs from offline scan over its substream (%d vs %d bytes)",
				i, len(got), want.Len())
		}
	}
}
