package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"ipin/internal/graph"
)

// The documented staleness contract when one shard falls behind: a
// lagging shard's nodes answer from its LAST published checkpoint —
// older, never wrong for its substream — while fresh shards answer
// current state, and the generation vector exposes the skew. This test
// drives the contract end to end by checkpointing only one of two
// shards after a second batch of edges.
func TestOneShardLaggingStaleness(t *testing.T) {
	const shards = 2
	slots := DefaultSlotMap(shards)

	// One distinguished source per shard.
	var src0, src1 graph.NodeID = -1, -1
	for u := graph.NodeID(0); u < testSrcs; u++ {
		if slots.ShardOf(u) == 0 && src0 < 0 {
			src0 = u
		}
		if slots.ShardOf(u) == 1 && src1 < 0 {
			src1 = u
		}
	}
	if src0 < 0 || src1 < 0 {
		t.Fatal("test sources do not cover both shards")
	}

	c, err := New(Config{Shards: shards, Dir: t.TempDir(), Stream: testStreamConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(context.Background())
	fe := NewFrontend(c.Gather())

	var lastAt graph.Time
	push := func(src graph.NodeID, dsts ...graph.NodeID) {
		t.Helper()
		for _, d := range dsts {
			lastAt++
			if err := c.Push(graph.Interaction{Src: src, Dst: testSrcs + d, At: lastAt}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Batch A: both sources influence two destinations; both shards
	// checkpoint, so the cluster is aligned.
	push(src0, 0, 1)
	push(src1, 2, 3)
	if err := c.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	influence := func(u graph.NodeID) float64 {
		return c.Gather().View().Influence(u)
	}
	base0, base1 := influence(src0), influence(src1)
	if base0 <= 0 || base1 <= 0 {
		t.Fatalf("expected positive baseline influence, got %v / %v", base0, base1)
	}

	// Batch B: both sources reach new destinations — but only shard 0
	// checkpoints. Shard 1 is now one generation behind.
	push(src0, 4, 5, 6)
	push(src1, 7, 8, 9)
	if err := c.Shard(0).Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Fresh shard: answers reflect batch B. Lagging shard: answers are
	// exactly the batch-A state — stale, not wrong.
	if got := influence(src0); got <= base0 {
		t.Errorf("fresh shard should reflect batch B: influence(%d) = %v, batch-A baseline %v", src0, got, base0)
	}
	if got := influence(src1); got != base1 {
		t.Errorf("lagging shard must serve its last checkpoint: influence(%d) = %v, want %v", src1, got, base1)
	}

	// The skew is observable: generation vector [2,1] on /cluster/stats.
	gens := c.Gather().Generations()
	if gens[0] != 2 || gens[1] != 1 {
		t.Fatalf("generation vector = %v, want [2 1]", gens)
	}
	code, body := get(t, fe.Handler(), "/cluster/stats")
	if code != http.StatusOK {
		t.Fatalf("/cluster/stats: %d %s", code, body)
	}
	var doc struct {
		Shards      int      `json:"shards"`
		Ready       bool     `json:"ready"`
		Generations []uint64 `json:"generations"`
		Skew        uint64   `json:"generation_skew"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Shards != 2 || !doc.Ready || doc.Skew != 1 {
		t.Errorf("/cluster/stats = %+v, want 2 shards, ready, skew 1", doc)
	}

	// The lagging shard catches up; skew returns to zero and its nodes
	// go fresh.
	if err := c.Shard(1).Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := influence(src1); got <= base1 {
		t.Errorf("caught-up shard should reflect batch B: influence(%d) = %v", src1, got)
	}
	if skew := generationSkew(c.Gather().Generations()); skew != 0 {
		t.Errorf("generation skew after catch-up = %d, want 0", skew)
	}
}
