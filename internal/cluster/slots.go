package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"ipin/internal/graph"
)

// Slot-based shard routing, modeled on Redis Cluster's fixed keyspace
// partition: the node-id space hashes onto a constant number of slots,
// and a slot map assigns every slot to exactly one shard. Routing an
// edge therefore never consults per-node state, shards can be counted on
// one hand or in the hundreds without rehashing nodes, and resharding is
// a slot-map edit (move slot ranges, replay the owners' substreams) —
// never a per-node migration table.

// Slots is the size of the routing keyspace. Every source node hashes
// onto one slot; every slot belongs to exactly one shard.
const Slots = 16384

// castagnoli is the CRC-32C table, the same polynomial the WAL frames
// use — one checksum implementation across the subsystem.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SlotOf hashes a node id onto its routing slot. The hash is CRC-32C
// over the little-endian 64-bit id, reduced mod Slots; it is part of the
// cluster contract (DESIGN.md "Cluster topology and shard routing") and
// must not change, or existing shard directories would stop owning the
// substreams they hold.
func SlotOf(u graph.NodeID) int {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(u))
	return int(crc32.Checksum(b[:], castagnoli) % Slots)
}

// SlotMap assigns every slot to a shard: m[slot] = shard index. A nil
// map in Config selects DefaultSlotMap.
type SlotMap []int

// DefaultSlotMap deals the slot space to shards in contiguous ranges,
// Redis-style: shard i owns slots [i·Slots/n, (i+1)·Slots/n).
func DefaultSlotMap(shards int) SlotMap {
	m := make(SlotMap, Slots)
	for s := range m {
		m[s] = s * shards / Slots
	}
	return m
}

// Validate checks that m covers exactly the slot space, references only
// the given shard count, and leaves no shard without slots (a shard that
// owns nothing would hold an empty WAL forever — almost certainly a
// misconfigured map).
func (m SlotMap) Validate(shards int) error {
	if len(m) != Slots {
		return fmt.Errorf("cluster: slot map has %d slots, want %d", len(m), Slots)
	}
	owned := make([]bool, shards)
	for slot, sh := range m {
		if sh < 0 || sh >= shards {
			return fmt.Errorf("cluster: slot %d mapped to shard %d, outside [0,%d)", slot, sh, shards)
		}
		owned[sh] = true
	}
	for sh, ok := range owned {
		if !ok {
			return fmt.Errorf("cluster: shard %d owns no slots", sh)
		}
	}
	return nil
}

// ShardOf returns the shard owning node u's slot.
func (m SlotMap) ShardOf(u graph.NodeID) int { return m[SlotOf(u)] }

// Counts returns how many slots each of the shards owns — the topology
// summary /cluster/stats reports.
func (m SlotMap) Counts(shards int) []int {
	counts := make([]int, shards)
	for _, sh := range m {
		counts[sh]++
	}
	return counts
}
