package cluster

import (
	"net/http"
	"strconv"

	"ipin/internal/core"
	"ipin/internal/graph"
	"ipin/internal/serve"
)

// Frontend is the merged HTTP query surface over a Gather: the same
// routes, parameter handling, response bodies, and error shapes as the
// single-node query server (internal/serve), answered by query-time
// scatter-gather over the per-shard tables instead of one table. When
// the routing identity holds (package comment), the bytes on the wire
// are identical to a single-node server fed the whole stream — the
// property the frontend tests assert against a real serve.Server.
//
// Beyond the serve routes it adds GET /cluster/stats: the per-shard
// checkpoint generation vector and its skew, the operator's view of
// which shard is behind.
type Frontend struct {
	g  *Gather
	mx *metrics
}

// NewFrontend returns the query surface over g. Queries answer 503
// until the first shard checkpoint publishes.
func NewFrontend(g *Gather) *Frontend { return &Frontend{g: g, mx: g.mx} }

// Routes returns the URL paths Register installs — the single-node
// query routes (minus /admin/reload, which has no cluster meaning:
// shards publish their own checkpoints) plus /cluster/stats.
func (f *Frontend) Routes() []string {
	return []string{"/influence", "/spread", "/topk", "/spreadby", "/spreadwindow", "/stats", "/cluster/stats"}
}

// Register installs the query routes on mux.
func (f *Frontend) Register(mux *http.ServeMux) {
	mux.HandleFunc("/influence", f.influence)
	mux.HandleFunc("/spread", f.spread)
	mux.HandleFunc("/topk", f.topk)
	mux.HandleFunc("/spreadby", f.spreadBy)
	mux.HandleFunc("/spreadwindow", f.spreadWindow)
	mux.HandleFunc("/stats", f.stats)
	mux.HandleFunc("/cluster/stats", f.clusterStats)
}

// Handler returns a standalone handler with the routes registered.
func (f *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()
	f.Register(mux)
	return mux
}

// Generation returns the cluster generation (total shard publishes) —
// the monotone counter response caches and WaitGeneration-style logic
// key on in single-node deployments.
func (f *Frontend) Generation() uint64 { return f.g.Generation() }

// write renders v exactly as the single-node routes do.
func (f *Frontend) write(w http.ResponseWriter, v any) {
	body, err := serve.MarshalBody(v)
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

func (f *Frontend) influence(w http.ResponseWriter, r *http.Request) {
	v := f.g.View()
	if !v.Ready() {
		serve.WriteError(w, serve.ErrNoSnapshot())
		return
	}
	u, err := serve.ParseNode(r.URL.Query().Get("node"), v.NumNodes())
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	f.mx.mergeQueries.Inc()
	f.write(w, map[string]any{"node": u, "influence": v.Influence(u)})
}

func (f *Frontend) spread(w http.ResponseWriter, r *http.Request) {
	v := f.g.View()
	if !v.Ready() {
		serve.WriteError(w, serve.ErrNoSnapshot())
		return
	}
	seeds, err := serve.ParseSeeds(r.URL.Query().Get("seeds"), v.NumNodes())
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	f.mx.mergeQueries.Inc()
	f.write(w, map[string]any{"seeds": seeds, "spread": v.Spread(seeds)})
}

func (f *Frontend) topk(w http.ResponseWriter, r *http.Request) {
	v := f.g.View()
	if !v.Ready() {
		serve.WriteError(w, serve.ErrNoSnapshot())
		return
	}
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k < 1 || k > v.NumNodes() {
		serve.WriteError(w, serve.BadParam("bad k parameter"))
		return
	}
	merged, err := f.g.Merged(v)
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	f.mx.mergeQueries.Inc()
	seeds := core.TopKApproxSeeds(merged, k)
	f.write(w, map[string]any{"seeds": seeds, "spread": v.Spread(seeds)})
}

func (f *Frontend) spreadBy(w http.ResponseWriter, r *http.Request) {
	v := f.g.View()
	if !v.Ready() {
		serve.WriteError(w, serve.ErrNoSnapshot())
		return
	}
	seeds, err := serve.ParseSeeds(r.URL.Query().Get("seeds"), v.NumNodes())
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	deadline, err := strconv.ParseInt(r.URL.Query().Get("deadline"), 10, 64)
	if err != nil {
		serve.WriteError(w, serve.BadParam("bad deadline parameter"))
		return
	}
	f.mx.mergeQueries.Inc()
	f.write(w, map[string]any{
		"seeds":    seeds,
		"deadline": deadline,
		"spread":   v.SpreadBy(seeds, graph.Time(deadline)),
	})
}

func (f *Frontend) spreadWindow(w http.ResponseWriter, r *http.Request) {
	v := f.g.View()
	if !v.Ready() {
		serve.WriteError(w, serve.ErrNoSnapshot())
		return
	}
	seeds, err := serve.ParseSeeds(r.URL.Query().Get("seeds"), v.NumNodes())
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	at, err := strconv.ParseInt(r.URL.Query().Get("at"), 10, 64)
	if err != nil {
		serve.WriteError(w, serve.BadParam("bad at parameter"))
		return
	}
	horizon := v.Omega()
	if raw := r.URL.Query().Get("horizon"); raw != "" {
		horizon, err = strconv.ParseInt(raw, 10, 64)
		if err != nil || horizon < 1 {
			serve.WriteError(w, serve.BadParam("bad horizon parameter"))
			return
		}
	}
	f.mx.mergeQueries.Inc()
	f.write(w, map[string]any{
		"seeds":   seeds,
		"at":      at,
		"horizon": horizon,
		"spread":  v.SpreadWindow(seeds, at, horizon),
	})
}

// stats serves the single-node /stats body computed over the merged
// summaries, so the numbers describe what queries actually see.
func (f *Frontend) stats(w http.ResponseWriter, r *http.Request) {
	v := f.g.View()
	if !v.Ready() {
		serve.WriteError(w, serve.ErrNoSnapshot())
		return
	}
	merged, err := f.g.Merged(v)
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	f.write(w, map[string]any{
		"kind":          "approx",
		"nodes":         merged.NumNodes(),
		"omega":         merged.Omega,
		"precision":     merged.Precision,
		"entries":       merged.EntryCount(),
		"summary_bytes": merged.MemoryBytes(),
	})
}

// clusterStats serves the topology/staleness document: how many shards,
// each shard's publish generation, and the skew between the most- and
// least-advanced shard — the number to alarm on when one shard lags.
func (f *Frontend) clusterStats(w http.ResponseWriter, r *http.Request) {
	v := f.g.View()
	f.write(w, map[string]any{
		"shards":          len(v.gens),
		"ready":           v.Ready(),
		"generation":      v.Generation(),
		"generations":     v.Generations(),
		"generation_skew": generationSkew(v.Generations()),
	})
}
