package cluster

import (
	"sync"

	"ipin/internal/core"
	"ipin/internal/graph"
	"ipin/internal/hll"
	"ipin/internal/vhll"
)

// Gather is the serving-side half of the cluster: the store each shard's
// checkpoints publish into, and the scatter-gather query math over them.
//
// Per shard it keeps exactly one thing — the latest published summary
// set — plus a generation counter. A query takes one consistent View of
// that vector and merges per-node sketches across it at query time:
// nothing is re-folded at publish, so a shard checkpoint costs the same
// as in a single-node deployment no matter how many shards exist.
//
// Staleness contract: a View reflects, for every shard, the latest
// checkpoint that shard had published when the View was taken. Shards
// checkpoint independently, so the vector is not aligned to one global
// cut of the stream; a shard that is behind contributes older — never
// wrong — state for the nodes it owns. Generations exposes the vector
// and cluster_generation_skew tracks its spread.
type Gather struct {
	mx *metrics

	mu    sync.RWMutex
	parts []*core.ApproxSummaries // latest published checkpoint per shard
	gens  []uint64                // publishes seen per shard
	total uint64                  // sum of gens: the cluster generation

	// Merged-summary memo for whole-table queries (top-k seed selection,
	// stats): rebuilt only when the generation vector moved.
	mergedMu   sync.Mutex
	merged     *core.ApproxSummaries
	mergedGens []uint64
}

func newGather(shards int, mx *metrics) *Gather {
	return &Gather{mx: mx,
		parts: make([]*core.ApproxSummaries, shards),
		gens:  make([]uint64, shards),
	}
}

// publish installs shard i's latest checkpoint. Publishes arrive from
// each shard's compactor goroutine; the summaries are shared with that
// shard's fold cache and are treated as read-only everywhere here.
func (g *Gather) publish(i int, s *core.ApproxSummaries) {
	g.mu.Lock()
	g.parts[i] = s
	g.gens[i]++
	g.total++
	skew := generationSkew(g.gens)
	gen := g.gens[i]
	g.mu.Unlock()
	g.mx.publishes.Inc()
	g.mx.shardGen[i].Set(int64(gen))
	g.mx.genSkew.Set(int64(skew))
}

// Publish installs shard i's latest checkpoint from outside the
// in-process compactor path — the hook a replication replica uses to
// feed its applied state into a gather store while the shard's primary
// is elsewhere. Identical semantics to the internal publish.
func (g *Gather) Publish(i int, s *core.ApproxSummaries) { g.publish(i, s) }

// ResumeGeneration raises shard i's publish counter to at least gen
// without installing a snapshot. A promoted replica calls this with the
// generation it last observed from the failed primary, so the cluster
// generation (and everything cached against it) stays monotonic across
// the failover instead of restarting the shard's counter from zero.
func (g *Gather) ResumeGeneration(i int, gen uint64) {
	g.mu.Lock()
	if gen > g.gens[i] {
		g.total += gen - g.gens[i]
		g.gens[i] = gen
		g.mx.shardGen[i].Set(int64(gen))
		g.mx.genSkew.Set(int64(generationSkew(g.gens)))
	}
	g.mu.Unlock()
}

// View returns one consistent snapshot of the per-shard tables: the
// parts and generation vector as they stood at a single instant. All
// query math runs on a View so a mid-query publish can never mix two
// vectors in one answer.
func (g *Gather) View() View {
	g.mu.RLock()
	defer g.mu.RUnlock()
	v := View{
		parts: append([]*core.ApproxSummaries(nil), g.parts...),
		gens:  append([]uint64(nil), g.gens...),
		total: g.total,
	}
	return v
}

// Generation returns the cluster generation: total checkpoint publishes
// across all shards. It grows on every shard publish, so caching keyed
// on it is never stale.
func (g *Gather) Generation() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.total
}

// Generations returns the per-shard publish counters.
func (g *Gather) Generations() []uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]uint64(nil), g.gens...)
}

// Merged returns the union of the view's per-shard summaries as one
// summary set — the whole-table form top-k seed selection needs. The
// result is memoized per generation vector: repeated queries between
// checkpoints pay one build.
func (g *Gather) Merged(v View) (*core.ApproxSummaries, error) {
	g.mergedMu.Lock()
	defer g.mergedMu.Unlock()
	if g.merged != nil && vectorEqual(g.mergedGens, v.gens) {
		return g.merged, nil
	}
	m, err := core.UnionApproxSummaries(v.parts...)
	if err != nil {
		return nil, err
	}
	g.merged, g.mergedGens = m, append([]uint64(nil), v.gens...)
	g.mx.mergeBuilds.Inc()
	return m, nil
}

// View is one consistent scatter-gather snapshot; its methods replicate
// the single-node serving math (internal/serve store) over the merged
// per-node sketches, so answers are byte-identical to a single-node run
// whenever the routing identity holds (see the package comment).
type View struct {
	parts []*core.ApproxSummaries
	gens  []uint64
	total uint64
}

// Ready reports whether any shard has published a checkpoint yet.
func (v View) Ready() bool {
	for _, p := range v.parts {
		if p != nil {
			return true
		}
	}
	return false
}

// Generations returns the per-shard publish counters of this view.
func (v View) Generations() []uint64 { return v.gens }

// Generation returns the cluster generation of this view.
func (v View) Generation() uint64 { return v.total }

// NumNodes returns the widest node range any shard has published — the
// same value a single-node ingester over the union stream would report,
// since node ranges grow from the same observed ids.
func (v View) NumNodes() int {
	n := 0
	for _, p := range v.parts {
		if p != nil && p.NumNodes() > n {
			n = p.NumNodes()
		}
	}
	return n
}

// Omega returns the influence window the summaries were built with.
func (v View) Omega() int64 {
	for _, p := range v.parts {
		if p != nil {
			return p.Omega
		}
	}
	return 0
}

// Precision returns the sketch precision of the published summaries.
func (v View) Precision() int {
	for _, p := range v.parts {
		if p != nil {
			return p.Precision
		}
	}
	return 0
}

// Sketch returns node u's merged sketch — the per-node union across all
// shards, freshly built and owned by the caller; nil when no shard holds
// state for u.
func (v View) Sketch(u graph.NodeID) *vhll.Sketch {
	return core.UnionSketch(u, v.parts...)
}

// Influence estimates |σω(u)| from u's merged sketch.
func (v View) Influence(u graph.NodeID) float64 {
	sk := v.Sketch(u)
	if sk == nil {
		return 0
	}
	return sk.Collapse().Estimate()
}

// Spread estimates |⋃ σω(u)| over the seeds: per seed the shards'
// sketches are unioned, collapsed, and folded into one HLL in seed
// order — the exact operation order of the single-node store.
func (v View) Spread(seeds []graph.NodeID) float64 {
	if !v.Ready() {
		return 0
	}
	union := hll.MustNew(v.Precision())
	for _, u := range seeds {
		if sk := v.Sketch(u); sk != nil {
			// Same-precision merge cannot fail.
			_ = union.Merge(sk.Collapse())
		}
	}
	return union.Estimate()
}

// SpreadBy estimates the deadline-bounded spread (channels ending at or
// before deadline), mirroring ApproxSummaries.SpreadByEstimate.
func (v View) SpreadBy(seeds []graph.NodeID, deadline graph.Time) float64 {
	if !v.Ready() {
		return 0
	}
	union := hll.MustNew(v.Precision())
	for _, u := range seeds {
		if sk := v.Sketch(u); sk != nil {
			_ = union.Merge(sk.CollapseBefore(int64(deadline)))
		}
	}
	return union.Estimate()
}

// SpreadWindow estimates the spread counting only nodes first influenced
// inside [at, at+horizon−1], mirroring
// ApproxSummaries.SpreadEstimateWindow.
func (v View) SpreadWindow(seeds []graph.NodeID, at, horizon int64) float64 {
	if !v.Ready() {
		return 0
	}
	union := hll.MustNew(v.Precision())
	for _, u := range seeds {
		if sk := v.Sketch(u); sk != nil {
			_ = union.Merge(sk.CollapseWindow(at, horizon))
		}
	}
	return union.Estimate()
}

// generationSkew returns max−min over the vector, 0 when empty.
func generationSkew(gens []uint64) uint64 {
	if len(gens) == 0 {
		return 0
	}
	lo, hi := gens[0], gens[0]
	for _, g := range gens[1:] {
		if g < lo {
			lo = g
		}
		if g > hi {
			hi = g
		}
	}
	return hi - lo
}

// vectorEqual reports whether two generation vectors match.
func vectorEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
