// Package cluster scales the live influence pipeline from one box to N:
// a shard router on the intake side partitions the edge stream by source
// node across independent stream.Ingesters (one WAL, chunk state, and
// checkpoint directory each), and a scatter-gather layer on the serving
// side fans each query out to the per-shard summary tables and merges
// the per-node sketches by union before spread estimation. Capacity
// becomes a shard count instead of a box size.
//
// # Topology
//
// Routing is slot-based, modeled on Redis Cluster: node ids hash onto a
// fixed space of 16384 slots (CRC-32C, the WAL's checksum), and a
// SlotMap assigns every slot to exactly one shard. Every edge (u, v, t)
// goes to the shard owning u's slot, so one shard sees ALL of a source
// node's edges — the invariant the merge semantics below rest on.
//
// # What merging means
//
// Versioned sketches are canonical forms of their inserted (rank,
// timestamp) sets, so per-node union across shards is exact: node u's
// merged sketch is byte-identical to the sketch the owning shard's scan
// built, which in turn is byte-identical to an offline one-pass scan
// over that shard's substream. For streams whose channels never chain
// through an interior node owned elsewhere (in particular any bipartite
// stream, where sources and destinations are disjoint), the merged
// answer is byte-identical to a single-node run over the whole stream,
// for every shard count and every slot map — the property the identity
// tests and the benchstream cluster phase gate. For streams with
// cross-shard multi-hop channels the per-shard summaries remain exact
// for each shard's substream, and the union is the documented
// lower-bound composition; DESIGN.md "Cluster topology and shard
// routing" is the normative statement of both cases.
//
// # Wiring
//
//	cl, err := cluster.New(cluster.Config{
//		Shards: 4, Dir: "state",
//		Stream: stream.Config{Omega: 3600, NumNodes: 100_000},
//	})
//	// cl.Push(edge) routes by source slot; cl.Checkpoint(ctx) fans out.
//	fe := cluster.NewFrontend(cl.Gather())
//	http.ListenAndServe(":8080", fe.Handler())
//
// Each shard publishes checkpoints independently into the Gather store;
// queries merge, per shard, the latest published checkpoint. A shard
// that falls behind makes its nodes' answers stale by at most its
// checkpoint lag — never wrong for its own substream — and the
// generation vector (Gather.Generations, /cluster/stats,
// cluster_generation_skew) makes the skew observable.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"sync"

	"ipin/internal/core"
	"ipin/internal/graph"
	"ipin/internal/stream"
	"ipin/internal/swhll"
)

// Config parameterizes a cluster ingester.
type Config struct {
	// Shards is the number of independent ingest shards; 0 selects 1.
	Shards int
	// Dir is the parent state directory; shard i keeps its WAL, chunk
	// sidecars, and checkpoints in Dir/shard-NNN. Created if missing.
	Dir string
	// Slots maps routing slots to shards; nil selects
	// DefaultSlotMap(Shards). Maps with skewed ownership are legal —
	// identity does not depend on balance, only throughput does.
	Slots SlotMap
	// Stream is the per-shard ingester template: Omega, Precision,
	// NumNodes, Slack, checkpoint cadence, Retain, ProfileWindow/TopK,
	// Registry, Tracer, Journal all apply to every shard. Stream.Dir and
	// Stream.Publish are owned by the cluster and must be unset.
	Stream stream.Config
}

// Ingester is the cluster intake: a slot router in front of Shards
// independent stream ingesters, plus the gather store their checkpoints
// publish into.
type Ingester struct {
	cfg    Config
	slots  SlotMap
	shards []*stream.Ingester
	gather *Gather
	mx     *metrics
}

// New validates the topology, opens (or recovers) every shard's state
// directory, and starts the per-shard pipelines. Recovery is per shard
// and independent: a shard replays its own WAL suffix exactly as a
// single-node ingester would.
func New(cfg Config) (*Ingester, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("cluster: Dir is required")
	}
	if cfg.Stream.Dir != "" {
		return nil, fmt.Errorf("cluster: set Dir on the cluster, not the shard template")
	}
	if cfg.Stream.Publish != nil {
		return nil, fmt.Errorf("cluster: shard checkpoints publish into the gather store; Stream.Publish must be nil")
	}
	if cfg.Slots == nil {
		cfg.Slots = DefaultSlotMap(cfg.Shards)
	}
	if err := cfg.Slots.Validate(cfg.Shards); err != nil {
		return nil, err
	}
	mx := newMetrics(cfg.Stream.Registry, cfg.Shards)
	g := newGather(cfg.Shards, mx)
	c := &Ingester{cfg: cfg, slots: cfg.Slots, gather: g, mx: mx,
		shards: make([]*stream.Ingester, cfg.Shards)}
	for i := 0; i < cfg.Shards; i++ {
		scfg := cfg.Stream
		scfg.Dir = filepath.Join(cfg.Dir, fmt.Sprintf("shard-%03d", i))
		shard := i
		scfg.Publish = func(s *core.ApproxSummaries) { g.publish(shard, s) }
		in, err := stream.New(scfg)
		if err != nil {
			// Unwind the shards already running.
			for j := 0; j < i; j++ {
				_ = c.shards[j].Close(context.Background())
			}
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		c.shards[i] = in
	}
	return c, nil
}

// NumShards returns the shard count.
func (c *Ingester) NumShards() int { return len(c.shards) }

// Shard returns shard i's ingester — for per-shard operations (forcing
// one shard's checkpoint, reading one shard's stats) and tests.
func (c *Ingester) Shard(i int) *stream.Ingester { return c.shards[i] }

// Slots returns the slot map the router uses.
func (c *Ingester) Slots() SlotMap { return c.slots }

// Gather returns the store shard checkpoints publish into — hand it to
// NewFrontend for the merged query surface.
func (c *Ingester) Gather() *Gather { return c.gather }

// Route returns the shard that owns source node u.
func (c *Ingester) Route(u graph.NodeID) int { return c.slots.ShardOf(u) }

// Push routes one edge to the shard owning its source slot. It blocks
// only on that shard's intake queue; the other shards are unaffected.
func (c *Ingester) Push(e graph.Interaction) error {
	sh := c.slots.ShardOf(e.Src)
	if err := c.shards[sh].Push(e); err != nil {
		return fmt.Errorf("shard %d: %w", sh, err)
	}
	c.mx.routed.Inc()
	c.mx.shardEdges[sh].Inc()
	return nil
}

// Checkpoint forces a synchronous checkpoint on every shard,
// concurrently, and returns when all have published — after it returns,
// the gather store reflects everything pushed before the call.
func (c *Ingester) Checkpoint(ctx context.Context) error {
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, in := range c.shards {
		wg.Add(1)
		go func(i int, in *stream.Ingester) {
			defer wg.Done()
			if err := in.Checkpoint(ctx); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
			}
		}(i, in)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return err
	}
	c.mx.checkpoints.Inc()
	return nil
}

// Close checkpoints and shuts down every shard, concurrently.
func (c *Ingester) Close(ctx context.Context) error {
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, in := range c.shards {
		wg.Add(1)
		go func(i int, in *stream.Ingester) {
			defer wg.Done()
			if err := in.Close(ctx); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
			}
		}(i, in)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Err returns the first shard's terminal pipeline error, nil while all
// shards run.
func (c *Ingester) Err() error {
	for i, in := range c.shards {
		if err := in.Err(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Stats returns cluster-wide ingestion counters: sums of the per-shard
// counters, with LastAt the newest timestamp any shard emitted and
// Checkpoints the total publishes across shards. ShardStats has the
// per-shard breakdown.
func (c *Ingester) Stats() stream.Stats {
	var total stream.Stats
	for _, st := range c.ShardStats() {
		total.Accepted += st.Accepted
		total.Emitted += st.Emitted
		total.ReorderDrops += st.ReorderDrops
		total.Checkpoints += st.Checkpoints
		total.CoveredEdges += st.CoveredEdges
		total.RecoveredChunkEdges += st.RecoveredChunkEdges
		total.RecoveredWALEdges += st.RecoveredWALEdges
		total.RetiredChunks += st.RetiredChunks
		total.RetiredEdges += st.RetiredEdges
		if st.LastAt > total.LastAt {
			total.LastAt = st.LastAt
		}
	}
	return total
}

// ShardStats returns each shard's own counters, indexed by shard.
func (c *Ingester) ShardStats() []stream.Stats {
	out := make([]stream.Stats, len(c.shards))
	for i, in := range c.shards {
		out[i] = in.Stats()
	}
	return out
}

// Health returns the cluster health document: topology, the checkpoint
// generation vector and its skew, and each shard's own health map under
// "shard_N".
func (c *Ingester) Health() map[string]any {
	gens := c.gather.Generations()
	h := map[string]any{
		"shards":          len(c.shards),
		"slot_counts":     c.slots.Counts(len(c.shards)),
		"generations":     gens,
		"generation_skew": generationSkew(gens),
	}
	for i, in := range c.shards {
		h[fmt.Sprintf("shard_%d", i)] = in.Health()
	}
	return h
}

// TopK returns the merged live top-k influencer view, nil until every
// running shard with profiles enabled has published one. Per-node scores
// are exact relative to a single-node run — a node's out-neighborhood
// profile is built entirely from its own edges, which all live on its
// owner — but each shard evaluates its scores at its own watermark, so
// a lagging shard contributes stale rows (see the staleness contract in
// DESIGN.md). CoveredEdges sums across shards; LastAt and RefreshedAt
// are the newest any shard reported.
func (c *Ingester) TopK() *stream.HotView {
	k := c.cfg.Stream.TopK
	if k <= 0 {
		k = 10
	}
	merged := &stream.HotView{}
	var entries []swhll.TopEntry
	views := 0
	for _, in := range c.shards {
		v := in.TopK()
		if v == nil {
			continue
		}
		views++
		entries = append(entries, v.Entries...)
		merged.CoveredEdges += v.CoveredEdges
		if v.LastAt > merged.LastAt {
			merged.LastAt = v.LastAt
		}
		if v.RefreshedAt.After(merged.RefreshedAt) {
			merged.RefreshedAt = v.RefreshedAt
		}
	}
	if views == 0 {
		return nil
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Score != entries[j].Score {
			return entries[i].Score > entries[j].Score
		}
		return entries[i].Node < entries[j].Node
	})
	if len(entries) > k {
		entries = entries[:k:k]
	}
	merged.Entries = entries
	return merged
}

// ReadFrom pushes every edge line read from r until EOF, routing each to
// its owner shard — the same wire format as stream.Ingester.ReadFrom.
// Parse errors are counted (cluster_parse_errors_total) and skipped.
func (c *Ingester) ReadFrom(r io.Reader) (int64, error) {
	return readLines(r, c.mx, c.Push)
}

// Handler returns the HTTP intake handler: POSTed edge lines are routed
// per line, the response reports how many were accepted — the same
// contract as stream.Ingester.Handler.
func (c *Ingester) Handler() http.Handler {
	return intakeHandler(c.mx, c.Push)
}
