package cluster

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strings"

	"ipin/internal/graph"
	"ipin/internal/stream"
)

// Intake adapters: the cluster speaks the same one-edge-per-line wire
// format as a single ingester ("src dst time", '#' comments and blanks
// ignored), so a feed can be pointed at a cluster without changing a
// byte — the router decides per line which shard the edge lands on.

// readLines parses and routes every edge line from r. Malformed lines
// are counted and skipped, never fatal, matching stream.ReadFrom.
func readLines(r io.Reader, mx *metrics, push func(graph.Interaction) error) (int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var n int64
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := stream.ParseEdge(line)
		if err != nil {
			mx.parseErrors.Inc()
			continue
		}
		if err := push(e); err != nil {
			return n, err
		}
		n++
	}
	return n, sc.Err()
}

// intakeHandler is the POST /ingest handler body, response-compatible
// with stream.Ingester.Handler: {"accepted": N}, 503 with an error body
// when a shard refuses the push.
func intakeHandler(mx *metrics, push func(graph.Interaction) error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, `{"error":"POST required"}`, http.StatusMethodNotAllowed)
			return
		}
		n, err := readLines(r.Body, mx, push)
		if err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"accepted":%d,"error":%q}`+"\n", n, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"accepted":%d}`+"\n", n)
	})
}
