package cluster

import (
	"fmt"

	"ipin/internal/obs"
)

// Cluster metric names. The per-shard series carry a shard label in the
// Prometheus literal-name idiom obs uses (`cluster_shard_edges_total
// {shard="3"}`); the unlabeled series aggregate the whole cluster. The
// shards themselves share the caller's registry, so the stream_* series
// are cluster-wide totals — per-shard attribution lives here.
const (
	MetricShards       = "cluster_shards"
	MetricRouted       = "cluster_edges_routed_total"
	MetricParseErrors  = "cluster_parse_errors_total"
	MetricCheckpoints  = "cluster_checkpoint_rounds_total"
	MetricPublishes    = "cluster_publishes_total"
	MetricMergeBuilds  = "cluster_merge_builds_total"
	MetricMergeQueries = "cluster_merge_queries_total"
	MetricGenSkew      = "cluster_generation_skew"
	MetricShardEdges   = "cluster_shard_edges_total"
	MetricShardGen     = "cluster_shard_generation"
)

// metrics bundles the cluster instruments. Built over a nil registry
// every field is a nil no-op, preserving obs's zero-cost contract.
type metrics struct {
	routed       *obs.Counter
	parseErrors  *obs.Counter
	checkpoints  *obs.Counter
	publishes    *obs.Counter
	mergeBuilds  *obs.Counter
	mergeQueries *obs.Counter
	genSkew      *obs.Gauge
	shardEdges   []*obs.Counter
	shardGen     []*obs.Gauge
}

func newMetrics(reg *obs.Registry, shards int) *metrics {
	m := &metrics{
		routed:       reg.Counter(MetricRouted, "Edges routed to a shard by source-node slot."),
		parseErrors:  reg.Counter(MetricParseErrors, "Malformed edge lines skipped by the cluster intake."),
		checkpoints:  reg.Counter(MetricCheckpoints, "Forced all-shard checkpoint rounds completed."),
		publishes:    reg.Counter(MetricPublishes, "Per-shard checkpoint publishes received by the gather store."),
		mergeBuilds:  reg.Counter(MetricMergeBuilds, "Merged summary rebuilds (one per changed generation vector)."),
		mergeQueries: reg.Counter(MetricMergeQueries, "Scatter-gather queries answered from per-shard tables."),
		genSkew:      reg.Gauge(MetricGenSkew, "Difference between the most- and least-advanced shard checkpoint generations."),
		shardEdges:   make([]*obs.Counter, shards),
		shardGen:     make([]*obs.Gauge, shards),
	}
	reg.Gauge(MetricShards, "Ingest shards in this cluster.").Set(int64(shards))
	for i := 0; i < shards; i++ {
		m.shardEdges[i] = reg.Counter(fmt.Sprintf("%s{shard=\"%d\"}", MetricShardEdges, i),
			"Edges routed to this shard.")
		m.shardGen[i] = reg.Gauge(fmt.Sprintf("%s{shard=\"%d\"}", MetricShardGen, i),
			"Checkpoint generation this shard last published.")
	}
	return m
}
