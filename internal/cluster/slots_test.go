package cluster

import (
	"strings"
	"testing"

	"ipin/internal/graph"
)

func TestSlotOfRangeAndDeterminism(t *testing.T) {
	for u := graph.NodeID(0); u < 100_000; u++ {
		s := SlotOf(u)
		if s < 0 || s >= Slots {
			t.Fatalf("SlotOf(%d) = %d outside [0,%d)", u, s, Slots)
		}
		if s != SlotOf(u) {
			t.Fatalf("SlotOf(%d) not deterministic", u)
		}
	}
}

func TestDefaultSlotMap(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 7, 16, 128} {
		m := DefaultSlotMap(shards)
		if err := m.Validate(shards); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		// Contiguous ranges: the shard index never decreases along the
		// slot space.
		prev := 0
		for slot, sh := range m {
			if sh < prev {
				t.Fatalf("shards=%d: shard index decreases at slot %d (%d after %d)", shards, slot, sh, prev)
			}
			prev = sh
		}
		// Balance: contiguous division leaves ranges within one slot of
		// each other.
		counts := m.Counts(shards)
		lo, hi := counts[0], counts[0]
		for _, c := range counts {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if hi-lo > 1 {
			t.Errorf("shards=%d: slot counts range %d..%d, want within 1", shards, lo, hi)
		}
	}
}

func TestSlotMapValidate(t *testing.T) {
	if err := SlotMap(make([]int, 7)).Validate(2); err == nil || !strings.Contains(err.Error(), "slots") {
		t.Errorf("short map: %v", err)
	}
	m := DefaultSlotMap(2)
	m[0] = 5
	if err := m.Validate(2); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("out-of-range shard: %v", err)
	}
	m = DefaultSlotMap(1) // every slot on shard 0
	if err := m.Validate(2); err == nil || !strings.Contains(err.Error(), "owns no slots") {
		t.Errorf("empty shard: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Shards: 2}); err == nil {
		t.Error("missing Dir accepted")
	}
	cfg := Config{Shards: 2, Dir: t.TempDir(), Stream: testStreamConfig()}
	cfg.Stream.Dir = "elsewhere"
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "not the shard template") {
		t.Errorf("template Dir accepted: %v", err)
	}
	cfg.Stream.Dir = ""
	cfg.Slots = SlotMap{0, 1}
	if _, err := New(cfg); err == nil {
		t.Error("truncated slot map accepted")
	}
}
