package par

import (
	"sync/atomic"
	"testing"
)

// BenchmarkForEachOverhead measures pure pool overhead on trivially cheap
// tasks — the worst case for the atomic work counter.
func BenchmarkForEachOverhead(b *testing.B) {
	var sink atomic.Int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForEach(4, 256, func(j int) { sink.Add(int64(j)) })
	}
}

// BenchmarkForEachInline is the workers=1 fast path: no goroutines, no
// atomics beyond the metrics nil-checks.
func BenchmarkForEachInline(b *testing.B) {
	var sink int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForEach(1, 256, func(j int) { sink += int64(j) })
	}
	_ = sink
}

// BenchmarkMapScaling runs a CPU-bound task at several worker counts; on
// multi-core hardware throughput should rise with the worker count.
func BenchmarkMapScaling(b *testing.B) {
	work := func(i int) int {
		h := uint64(i)
		for k := 0; k < 2000; k++ {
			h = h*6364136223846793005 + 1442695040888963407
		}
		return int(h)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = Map(workers, 512, work)
			}
		})
	}
}
