package par

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"ipin/internal/obs"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 13} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			hits := make([]atomic.Int32, n)
			ForEach(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestMapDeterministicOrdering(t *testing.T) {
	want := make([]int, 500)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 3, 8} {
		got := Map(workers, len(want), func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "boom at 42") {
			t.Fatalf("panic value %v does not carry the original payload", r)
		}
		if !strings.Contains(msg, "worker stack") {
			t.Fatalf("panic value %v does not carry the worker stack", r)
		}
	}()
	ForEach(4, 1000, func(i int) {
		if i == 42 {
			panic("boom at 42")
		}
	})
}

func TestForEachPanicInlinePath(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inline panic was swallowed")
		}
	}()
	ForEach(1, 3, func(i int) { panic("inline") })
}

func TestForEachPanicCancelsRemainingWork(t *testing.T) {
	var ran atomic.Int64
	func() {
		defer func() { _ = recover() }()
		ForEach(2, 1_000_000, func(i int) {
			ran.Add(1)
			panic("first task dies")
		})
	}()
	// Cancellation is advisory (tasks already drawn finish), but the vast
	// majority of the million tasks must never start.
	if got := ran.Load(); got > 10_000 {
		t.Fatalf("%d tasks ran after a poisoning panic", got)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestBlocksPartition(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{0, 4}, {1, 4}, {4, 4}, {5, 4}, {100, 7}, {3, 1}, {10, 100},
	} {
		blocks := Blocks(tc.n, tc.k)
		if tc.n == 0 {
			if blocks != nil {
				t.Fatalf("Blocks(0,%d) = %v", tc.k, blocks)
			}
			continue
		}
		if len(blocks) > tc.k {
			t.Fatalf("Blocks(%d,%d) returned %d ranges", tc.n, tc.k, len(blocks))
		}
		lo := 0
		for _, b := range blocks {
			if b.Lo != lo {
				t.Fatalf("Blocks(%d,%d): gap before %+v", tc.n, tc.k, b)
			}
			if b.Len() <= 0 {
				t.Fatalf("Blocks(%d,%d): empty range %+v", tc.n, tc.k, b)
			}
			lo = b.Hi
		}
		if lo != tc.n {
			t.Fatalf("Blocks(%d,%d) covers [0,%d)", tc.n, tc.k, lo)
		}
		// Near-equal: sizes differ by at most one.
		min, max := blocks[0].Len(), blocks[0].Len()
		for _, b := range blocks {
			if b.Len() < min {
				min = b.Len()
			}
			if b.Len() > max {
				max = b.Len()
			}
		}
		if max-min > 1 {
			t.Fatalf("Blocks(%d,%d): uneven sizes %d..%d", tc.n, tc.k, min, max)
		}
	}
}

func TestMetricsRecorded(t *testing.T) {
	reg := obs.NewRegistry()
	InstallMetrics(reg)
	defer InstallMetrics(nil)
	ForEach(4, 100, func(int) {})
	if got := reg.Counter(`ipin_par_calls_total`, "").Value(); got < 1 {
		t.Fatal("calls counter not incremented")
	}
	if got := reg.Counter(`ipin_par_tasks_total`, "").Value(); got < 100 {
		t.Fatalf("tasks counter = %d", got)
	}
}
