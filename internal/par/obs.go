package par

import (
	"sync/atomic"

	"ipin/internal/obs"
)

// metrics are the pool's telemetry instruments. All fields are nil until
// InstallMetrics runs, so every record site is a free no-op by default —
// the same opt-in contract as the other instrumented packages.
type metrics struct {
	calls   *obs.Counter
	tasks   *obs.Counter
	workers *obs.Counter
	panics  *obs.Counter
}

var (
	installed atomic.Pointer[metrics]
	noop      = new(metrics)
)

// m returns the active metrics set, never nil.
func m() *metrics {
	if p := installed.Load(); p != nil {
		return p
	}
	return noop
}

// InstallMetrics registers the pool's instruments in reg and starts
// recording into them; nil uninstalls.
func InstallMetrics(reg *obs.Registry) {
	if reg == nil {
		installed.Store(nil)
		return
	}
	installed.Store(&metrics{
		calls:   reg.Counter(`ipin_par_calls_total`, "Parallel ForEach/Map invocations."),
		tasks:   reg.Counter(`ipin_par_tasks_total`, "Tasks dispatched through the worker pool."),
		workers: reg.Counter(`ipin_par_workers_started_total`, "Worker goroutines launched by the pool."),
		panics:  reg.Counter(`ipin_par_panics_total`, "Panics recovered on worker goroutines and rethrown."),
	})
}
