// Package par is the repository's parallel execution layer: a bounded
// worker pool with panic propagation and deterministic result ordering.
//
// Every parallel path in this repository — the time-sliced IRS scans, the
// sketch collapse loops, the greedy gain evaluations, the oracle
// tree-merges — funnels through ForEach or Map, so concurrency policy
// (worker counts, panic handling, instrumentation) lives in exactly one
// place. Results are deterministic by construction: workers write only to
// the slot of the index they drew, so the output of Map is independent of
// scheduling, and callers that need sequenced side effects order them
// after the barrier.
//
// The pool is intentionally not a long-lived object: Go goroutines are
// cheap enough that each call spins up its workers and tears them down at
// the barrier, which keeps the API free of lifecycle management and makes
// every call self-contained under the race detector.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested parallelism level: values ≤ 0 select
// GOMAXPROCS, everything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// capturedPanic wraps a panic recovered on a worker goroutine so it can
// be rethrown on the caller's goroutine without losing the original
// value or its origin.
type capturedPanic struct {
	value any
	stack []byte
}

func (p *capturedPanic) String() string {
	return fmt.Sprintf("par: worker panic: %v\n\nworker stack:\n%s", p.value, p.stack)
}

// ForEach runs fn(i) for every i in [0, n), using up to workers
// goroutines, and returns once all calls have finished. Work is handed
// out through an atomic counter, so uneven task costs balance across
// workers. A panic in fn is captured (first one wins), the remaining
// work is cancelled, and the panic is rethrown on the caller's goroutine
// with the worker stack attached — a parallel loop fails exactly as
// loudly as a sequential one.
//
// workers ≤ 1 (or n ≤ 1) runs inline on the calling goroutine with no
// synchronization, so sequential callers pay nothing for routing through
// the pool.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		mx := m()
		mx.calls.Inc()
		mx.tasks.Add(int64(n))
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	mx := m()
	mx.calls.Inc()
	mx.tasks.Add(int64(n))
	mx.workers.Add(int64(workers))

	var (
		next    atomic.Int64
		failed  atomic.Bool
		panicMu sync.Mutex
		caught  *capturedPanic
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mx.panics.Inc()
					buf := make([]byte, 64<<10)
					buf = buf[:runtime.Stack(buf, false)]
					panicMu.Lock()
					if caught == nil {
						caught = &capturedPanic{value: r, stack: buf}
					}
					panicMu.Unlock()
					failed.Store(true)
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if caught != nil {
		panic(caught.String())
	}
}

// Map runs fn over [0, n) with up to workers goroutines and collects the
// results in index order. Scheduling never affects the output: result i
// is always fn(i).
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// Range is a half-open index interval [Lo, Hi).
type Range struct{ Lo, Hi int }

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Blocks splits [0, n) into at most k contiguous near-equal ranges in
// ascending order. It returns fewer than k ranges when n < k; every
// returned range is non-empty, and their concatenation is exactly
// [0, n). The time-sliced IRS scans use it to partition the sorted
// interaction log into per-worker time blocks.
func Blocks(n, k int) []Range {
	if n <= 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	out := make([]Range, 0, k)
	base, rem := n/k, n%k
	lo := 0
	for b := 0; b < k; b++ {
		size := base
		if b < rem {
			size++
		}
		out = append(out, Range{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}
