package par_test

import (
	"fmt"

	"ipin/internal/par"
)

func ExampleMap() {
	// Four items, two workers. Each worker writes only the slot of the
	// index it drew, so the output order is deterministic regardless of
	// scheduling.
	squares := par.Map(2, 4, func(i int) int { return i * i })
	fmt.Println(squares)
	// Output: [0 1 4 9]
}

func ExampleBlocks() {
	// Split ten items into three near-equal contiguous ranges, the unit
	// the time-sliced scans hand to each worker.
	for _, r := range par.Blocks(10, 3) {
		fmt.Println(r.Lo, r.Hi)
	}
	// Output:
	// 0 4
	// 4 7
	// 7 10
}
