// Package ipin (Information Propagation in Interaction Networks) is the
// public API of this repository: a Go implementation of
//
//	Rohit Kumar and Toon Calders. "Information Propagation in Interaction
//	Networks." EDBT 2017.
//
// An interaction network is a stream of timestamped directed interactions
// (u, v, t). An information channel is a path of interactions with
// strictly increasing timestamps whose total duration is bounded by a
// window ω; the influence reachability set σω(u) collects every node u can
// reach through such a channel. This package computes σω for all nodes in
// ONE pass over the interactions — exactly, or approximately in sublinear
// memory with a versioned HyperLogLog sketch — and builds an influence
// oracle and top-k influencer selection on the result.
//
// # Quick start
//
//	net := ipin.NewNetwork(3)
//	net.Add(0, 1, 100)
//	net.Add(1, 2, 250)
//	net.Sort()
//
//	irs, _ := ipin.ComputeApprox(net, net.WindowFromPercent(10), ipin.DefaultPrecision)
//	oracle := ipin.NewApproxOracle(irs)
//	seeds := ipin.TopKApprox(irs, 10)
//	spread := oracle.Spread(seeds)
//
// The subpackages under internal/ carry the substrates (sketches, cascade
// simulator, baselines, generators, experiment harness); this package
// re-exports the surface a downstream user needs. See README.md for the
// architecture and DESIGN.md for the paper-to-code map.
package ipin

import (
	"io"
	"net/http"

	"ipin/internal/cascade"
	"ipin/internal/cluster"
	"ipin/internal/core"
	"ipin/internal/gen"
	"ipin/internal/graph"
	"ipin/internal/hll"
	"ipin/internal/obs"
	"ipin/internal/repl"
	"ipin/internal/serve"
	"ipin/internal/stream"
	"ipin/internal/swhll"
	"ipin/internal/temporal"
	"ipin/internal/trace"
	"ipin/internal/vhll"
)

// Core value types of the interaction-network model (paper §2).
type (
	// NodeID is a dense node identifier in [0, NumNodes).
	NodeID = graph.NodeID
	// Time is an interaction timestamp in opaque ticks.
	Time = graph.Time
	// Interaction is one directed, timestamped interaction (u, v, t).
	Interaction = graph.Interaction
	// Network is an interaction network: nodes plus a time-ordered
	// interaction log.
	Network = graph.Log
	// NodeTable interns external string node names to NodeIDs.
	NodeTable = graph.NodeTable
)

// NewNetwork returns an empty interaction network over n nodes.
func NewNetwork(n int) *Network { return graph.New(n) }

// NewNodeTable returns an empty node-name interning table.
func NewNodeTable() *NodeTable { return graph.NewNodeTable() }

// ReadNetwork parses the whitespace text format ("src dst time" per
// line); node names are interned into the returned table. The log comes
// back sorted by time.
func ReadNetwork(r io.Reader) (*Network, *NodeTable, error) { return graph.ReadLog(r) }

// WriteNetwork writes the network in the text format; a nil table writes
// numeric NodeIDs.
func WriteNetwork(w io.Writer, n *Network, table *NodeTable) error {
	return graph.WriteLog(w, n, table)
}

// IRS computation (paper Algorithms 2 and 3).
type (
	// ExactIRS holds exact per-node IRS summaries.
	ExactIRS = core.ExactSummaries
	// ApproxIRS holds sketched per-node IRS summaries.
	ApproxIRS = core.ApproxSummaries
	// Oracle answers influence queries over either representation.
	Oracle = core.Oracle
	// HLL is a plain HyperLogLog sketch (the collapsed per-node summary).
	HLL = hll.Sketch
	// VHLL is the versioned HyperLogLog sketch of paper §3.2.2.
	VHLL = vhll.Sketch
)

// DefaultPrecision is the sketch precision (β = 512) the paper settles on.
const DefaultPrecision = core.DefaultPrecision

// ComputeExact runs the exact one-pass IRS algorithm with window omega
// (in ticks) over a sorted network.
func ComputeExact(n *Network, omega int64) *ExactIRS { return core.ComputeExact(n, omega) }

// ComputeApprox runs the sketch-based one-pass IRS algorithm.
func ComputeApprox(n *Network, omega int64, precision int) (*ApproxIRS, error) {
	return core.ComputeApprox(n, omega, precision)
}

// ComputeExactParallel is ComputeExact over time-sliced blocks scanned by
// up to workers goroutines (≤ 0 selects GOMAXPROCS). The output is
// byte-identical to the sequential scan; small networks fall back to it
// outright.
func ComputeExactParallel(n *Network, omega int64, workers int) *ExactIRS {
	return core.ComputeExactParallel(n, omega, workers)
}

// ComputeApproxParallel is the sketch-based counterpart of
// ComputeExactParallel; the resulting sketches are identical to
// ComputeApprox's.
func ComputeApproxParallel(n *Network, omega int64, precision, workers int) (*ApproxIRS, error) {
	return core.ComputeApproxParallel(n, omega, precision, workers)
}

// SetParallelism fixes the worker count used by the library's internal
// parallel phases — oracle collapse, first-round seed-selection gains,
// large spread unions. Zero (the default) means GOMAXPROCS.
func SetParallelism(workers int) { core.SetParallelism(workers) }

// ReadExactIRS loads exact summaries previously saved with
// (*ExactIRS).WriteTo.
func ReadExactIRS(r io.Reader) (*ExactIRS, error) { return core.ReadExactSummaries(r) }

// ReadApproxIRS loads sketched summaries previously saved with
// (*ApproxIRS).WriteTo.
func ReadApproxIRS(r io.Reader) (*ApproxIRS, error) { return core.ReadApproxSummaries(r) }

// NewExactOracle wraps exact summaries as an influence oracle.
func NewExactOracle(s *ExactIRS) Oracle { return core.ExactOracle{S: s} }

// NewApproxOracle finalizes sketched summaries into an influence oracle
// whose query cost is O(|seeds|·β), independent of the network size.
func NewApproxOracle(s *ApproxIRS) Oracle { return core.NewApproxOracle(s) }

// SpreadBy returns the exact number of distinct nodes the seed set can
// have influenced BY the deadline: the union of {v : λ(u,v) ≤ deadline}
// over the seeds.
func SpreadBy(s *ExactIRS, seeds []NodeID, deadline Time) int { return s.SpreadBy(seeds, deadline) }

// SpreadByEstimate is the sketched counterpart of SpreadBy.
func SpreadByEstimate(s *ApproxIRS, seeds []NodeID, deadline Time) float64 {
	return s.SpreadByEstimate(seeds, deadline)
}

// TopKExact selects k seed nodes from exact summaries with the paper's
// greedy Algorithm 4.
func TopKExact(s *ExactIRS, k int) []NodeID { return core.TopKExact(s, k) }

// TopKApprox selects k seed nodes from sketched summaries with the
// paper's greedy Algorithm 4.
func TopKApprox(s *ApproxIRS, k int) []NodeID { return core.TopKApproxSeeds(s, k) }

// TopKExactCELF is TopKExact with CELF lazy evaluation — the same seeds
// at lower cost on large candidate sets.
func TopKExactCELF(s *ExactIRS, k int) []NodeID { return core.TopKExactCELF(s, k) }

// TopKApproxCELF is TopKApprox with CELF lazy evaluation.
func TopKApproxCELF(s *ApproxIRS, k int) []NodeID { return core.TopKApproxCELF(s, k) }

// Cascade simulation (paper Algorithm 1).
type (
	// CascadeConfig parameterizes the Time-Constrained Information
	// Cascade model.
	CascadeConfig = cascade.Config
)

// Simulate runs one TCIC trial and returns the number of infected nodes.
func Simulate(n *Network, seeds []NodeID, cfg CascadeConfig) int {
	return cascade.Simulate(n, seeds, cfg)
}

// AverageSpread repeats Simulate over independent trials (in parallel)
// and returns the mean spread.
func AverageSpread(n *Network, seeds []NodeID, cfg CascadeConfig, trials, parallelism int) float64 {
	return cascade.AverageSpread(n, seeds, cfg, trials, parallelism)
}

// Synthetic data generation (the Table 2 stand-ins).
type (
	// GenConfig parameterizes a synthetic interaction network.
	GenConfig = gen.Config
	// GenModel selects the structural family of a generated network.
	GenModel = gen.Model
)

// The generator models.
const (
	GenEmail   = gen.ModelEmail
	GenSocial  = gen.ModelSocial
	GenCascade = gen.ModelCascade
	GenUniform = gen.ModelUniform
)

// Generate produces a synthetic interaction network.
func Generate(cfg GenConfig) (*Network, error) { return gen.Generate(cfg) }

// GenDataset returns the generator config of one of the paper's Table 2
// datasets ("enron", "lkml", "facebook", "higgs", "slashdot", "us2016")
// at the given down-scaling factor.
func GenDataset(name string, scale int) (GenConfig, error) { return gen.Dataset(name, scale) }

// Diagnostics and live monitoring.
type (
	// Channel is one concrete information channel — the sequence of
	// interactions witnessing that its source influences its final
	// destination.
	Channel = temporal.Channel
	// NetworkStats summarizes the structural shape of a network.
	NetworkStats = graph.Stats
	// SlidingProfiles maintains approximate distinct-contact counts per
	// node over the trailing ω ticks of a LIVE forward stream — the
	// sliding-window neighborhood profiles of the paper's reference [15].
	SlidingProfiles = swhll.Profiles
)

// FindChannel reconstructs the earliest-ending information channel u→v of
// duration ≤ omega, the witness behind an IRS entry; nil when none
// exists. Brute force — use it for diagnostics on specific pairs, not in
// bulk.
func FindChannel(n *Network, u, v NodeID, omega int64) Channel {
	return temporal.FindChannel(n, u, v, omega)
}

// ComputeStats summarizes a network's structural shape.
func ComputeStats(n *Network) NetworkStats { return graph.ComputeStats(n) }

// NewSlidingProfiles returns a live profile maintainer over n nodes with
// the given sketch precision and window length in ticks. Feed it
// interactions in time order with Observe; read Profile/Top at any time.
func NewSlidingProfiles(n, precision int, window int64) (*SlidingProfiles, error) {
	return swhll.NewProfiles(n, precision, window)
}

// Serving (internal/serve): the production-shaped query layer between
// computed IRS summaries and HTTP.
type (
	// QueryServer answers oracle queries over HTTP with a sharded
	// snapshot store (live-reloadable via Reload or POST /admin/reload),
	// a bounded LRU result cache with single-flight deduplication, and
	// admission control that sheds overload with 429/503. Responses are
	// byte-identical with caching and sharding on or off.
	QueryServer = serve.Server
	// ServeConfig parameterizes a QueryServer; its zero value is usable.
	ServeConfig = serve.Config
)

// NewQueryServer returns a query server with no snapshot loaded; every
// query route answers 503 until LoadExact, LoadApprox, or Reload
// installs one. Mount it with (*QueryServer).Handler, or Register its
// routes on an existing mux:
//
//	srv := ipin.NewQueryServer(ipin.ServeConfig{CacheSize: 4096})
//	srv.LoadApprox(irs)
//	http.ListenAndServe(":8080", srv.Handler())
func NewQueryServer(cfg ServeConfig) *QueryServer { return serve.New(cfg) }

// Live ingestion (internal/stream): streaming edge intake, incremental
// sketch maintenance, and checkpointed hot-swap into the serving layer.
type (
	// Ingester is the live intake pipeline: timestamped interactions go
	// in (Push, or the TCP/HTTP/file-tail sources), pass a bounded
	// out-of-order reordering buffer, are made durable in a write-ahead
	// log, and surface as continuously refreshed ApproxIRS checkpoints.
	// Recovery is WAL replay: after a crash the rebuilt state is
	// byte-identical to an uninterrupted run over the surviving prefix.
	Ingester = stream.Ingester
	// IngestConfig parameterizes an Ingester; Dir and Omega are
	// required, everything else has a usable zero value.
	IngestConfig = stream.Config
	// IngestStats is a point-in-time snapshot of ingestion progress.
	IngestStats = stream.Stats
	// HotView is the live top-k influencer view an Ingester (or a
	// ClusterIngester, merged across shards) refreshes with every
	// published checkpoint.
	HotView = stream.HotView
)

// NewIngester opens (or recovers) the state directory and starts the
// live ingestion pipeline. Wire cfg.Publish to a QueryServer for
// in-process hot swap of each checkpoint:
//
//	srv := ipin.NewQueryServer(ipin.ServeConfig{})
//	ing, err := ipin.NewIngester(ipin.IngestConfig{
//		Dir: "state", Omega: 3600, Publish: srv.LoadApprox,
//	})
//	// ... ing.Push(edge) / ing.ServeTCP(l) / ing.Handler() ...
//	defer ing.Close(ctx)
func NewIngester(cfg IngestConfig) (*Ingester, error) { return stream.New(cfg) }

// ParseStreamEdge parses one "src dst time" wire-format line, the
// format the Ingester sources and gennet -stream speak.
func ParseStreamEdge(line string) (Interaction, error) { return stream.ParseEdge(line) }

// Multi-node sharding (internal/cluster): partition the edge stream by
// source node across independent Ingesters and answer queries by
// scatter-gather union of the per-shard sketches. Capacity becomes a
// shard count instead of a box size; see DESIGN.md "Cluster topology
// and shard routing" for the normative contract.
type (
	// ClusterIngester routes edges to per-shard Ingesters by source-node
	// slot (CRC-32C over 16384 slots) and fans forced checkpoints out to
	// all shards.
	ClusterIngester = cluster.Ingester
	// ClusterConfig parameterizes a ClusterIngester: the shard count,
	// the parent state directory, an optional slot map, and the
	// per-shard IngestConfig template.
	ClusterConfig = cluster.Config
	// ClusterSlotMap assigns each of the 16384 routing slots to a shard.
	ClusterSlotMap = cluster.SlotMap
	// ClusterGather is the store shard checkpoints publish into and the
	// scatter-gather query math over it.
	ClusterGather = cluster.Gather
	// ClusterFrontend serves the merged query surface over a
	// ClusterGather with the exact routes and response bodies of a
	// single-node QueryServer, plus /cluster/stats.
	ClusterFrontend = cluster.Frontend
)

// ClusterSlots is the size of the routing keyspace every cluster uses.
const ClusterSlots = cluster.Slots

// NewClusterIngester opens (or recovers) every shard's state directory
// under cfg.Dir and starts the per-shard pipelines:
//
//	cl, err := ipin.NewClusterIngester(ipin.ClusterConfig{
//		Shards: 4, Dir: "state",
//		Stream: ipin.IngestConfig{Omega: 3600, NumNodes: 100_000},
//	})
//	// cl.Push(edge) routes by source slot; queries go through
//	// ipin.NewClusterFrontend(cl.Gather()).
//	defer cl.Close(ctx)
func NewClusterIngester(cfg ClusterConfig) (*ClusterIngester, error) { return cluster.New(cfg) }

// NewClusterFrontend returns the merged HTTP query surface over a
// cluster's gather store.
func NewClusterFrontend(g *ClusterGather) *ClusterFrontend { return cluster.NewFrontend(g) }

// DefaultClusterSlotMap deals the slot space to shards in contiguous
// ranges, the routing a ClusterConfig with a nil Slots selects.
func DefaultClusterSlotMap(shards int) ClusterSlotMap { return cluster.DefaultSlotMap(shards) }

// Replication and failover (internal/repl): a primary streams its WAL
// content over TCP (IREP0001 framing) to replicas that maintain their
// own fold caches and publish read-only checkpoints byte-identical to
// the primary's; on primary loss a controller promotes the most
// caught-up replica, which fences the old lineage by epoch and resumes
// intake at the replicated position. DESIGN.md "Replication and
// failover" (IREP0001) is the normative protocol statement.
type (
	// ReplPrimary accepts replica sessions against a live Ingester: full
	// sync of the sealed checkpoint on attach, then a live tail of framed
	// edge batches with acked positions holding the WAL retention floor.
	ReplPrimary = repl.Primary
	// ReplPrimaryConfig parameterizes a ReplPrimary; Ingester is
	// required.
	ReplPrimaryConfig = repl.PrimaryConfig
	// Replica follows a primary and keeps a byte-identical fold cache;
	// Promote fences the old primary and turns it into a live Ingester.
	Replica = repl.Replica
	// ReplicaConfig parameterizes a Replica; Dir and PrimaryAddr are
	// required.
	ReplicaConfig = repl.ReplicaConfig
	// FailoverController watches a replica set's contact clocks and
	// promotes the most caught-up replica after the primary goes silent.
	FailoverController = repl.Controller
	// FailoverConfig parameterizes a FailoverController; Replicas is
	// required.
	FailoverConfig = repl.ControllerConfig
)

// NewReplicationPrimary starts accepting replica sessions against a
// running Ingester:
//
//	p, err := ipin.NewReplicationPrimary(ipin.ReplPrimaryConfig{
//		Ingester: ing, Addr: ":7070",
//	})
func NewReplicationPrimary(cfg ReplPrimaryConfig) (*ReplPrimary, error) {
	return repl.NewPrimary(cfg)
}

// NewReplica attaches to a primary and follows its stream; wire
// cfg.Publish to a read-only QueryServer so the replica serves while it
// follows:
//
//	rep, err := ipin.NewReplica(ipin.ReplicaConfig{
//		Dir: "replica-state", PrimaryAddr: "primary:7070",
//		Publish: srv.LoadApprox,
//	})
//	// ... on primary loss: rep.Promote(ctx), then rep.Ingester() is
//	// the new intake.
func NewReplica(cfg ReplicaConfig) (*Replica, error) { return repl.NewReplica(cfg) }

// NewFailoverController watches replicas and performs one promotion
// when the primary goes silent past the configured timeout.
func NewFailoverController(cfg FailoverConfig) (*FailoverController, error) {
	return repl.NewController(cfg)
}

// Observability (internal/obs). Telemetry is off by default: every
// instrument is a nil-safe no-op until InstallMetrics runs, so library
// users who never opt in pay only a nil check per instrumented event.
type (
	// MetricsRegistry is a concurrency-safe namespace of counters,
	// gauges, and latency histograms, with Prometheus text-format
	// (WritePrometheus), JSON (WriteJSON), and expvar (PublishExpvar)
	// exposition.
	MetricsRegistry = obs.Registry
	// ProgressEvent is one structured phase progress report.
	ProgressEvent = obs.Event
	// ProgressSink consumes progress events.
	ProgressSink = obs.Sink
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// InstallMetrics points every instrumented package (scan, sketches,
// cascade, selection) at reg. Passing nil uninstalls, restoring the
// free no-op path. Install once at startup, before the work to observe.
func InstallMetrics(reg *MetricsRegistry) {
	core.InstallMetrics(reg)
	vhll.InstallMetrics(reg)
	swhll.InstallMetrics(reg)
	cascade.InstallMetrics(reg)
}

// SetProgressSink installs a sink receiving phase progress events from
// the IRS scans and seed-selection loops; nil uninstalls. TextProgress
// is a ready-made line-per-event sink.
func SetProgressSink(sink ProgressSink) { core.SetProgressSink(sink) }

// TextProgress returns a sink rendering events as single prefixed lines
// on w, safe for concurrent phases.
func TextProgress(w io.Writer, prefix string) ProgressSink { return obs.TextSink(w, prefix) }

// MetricsHandler serves reg in the Prometheus text exposition format —
// mount it at /metrics.
func MetricsHandler(reg *MetricsRegistry) http.Handler { return obs.Handler(reg) }

// InstrumentHTTP wraps next with per-route request counters, an
// in-flight gauge, an error counter, and latency histograms recorded in
// reg. routes is the closed set of URL paths tracked individually;
// other paths fold into route="other". With a nil registry it returns
// next unchanged.
func InstrumentHTTP(reg *MetricsRegistry, routes []string, next http.Handler) http.Handler {
	return obs.Middleware(reg, routes, next)
}

// InstallRuntimeMetrics registers Go runtime telemetry (goroutines, heap
// and total memory, GC cycles and pause distribution, scheduler latency)
// in reg, refreshed at exposition time. Nil-safe; install it on every
// registry a /metrics server exposes.
func InstallRuntimeMetrics(reg *MetricsRegistry) { obs.InstallRuntimeMetrics(reg) }

// End-to-end pipeline tracing (internal/trace): sampled edge traces
// through the live pipeline, a freshness SLO, a structured lifecycle
// journal, and the /debug/pipeline health endpoint. All of it is opt-in
// and nil-safe: an Ingester or QueryServer built without a Tracer or
// Journal pays one nil check per instrumented event.
type (
	// Tracer stamps every Nth accepted edge at each pipeline stage
	// (accept → reorder emit → WAL append/fsync → chunk seal → fold →
	// checkpoint write → publish → serve-visible). Hand one to both
	// IngestConfig.Tracer and ServeConfig.Tracer so traces terminate at
	// the generation swap that makes the edge queryable.
	Tracer = trace.Tracer
	// TraceConfig parameterizes a Tracer; the zero value samples every
	// 1024th edge.
	TraceConfig = trace.Config
	// TraceSLOConfig enables the freshness SLO tracker when Objective>0.
	TraceSLOConfig = trace.SLOConfig
	// TraceJournal is the bounded structured lifecycle-event journal
	// (segment rotations, chunk seals, checkpoints, compaction deletions,
	// snapshot reloads, shed decisions), with an optional JSON-lines
	// sink.
	TraceJournal = trace.Journal
	// TraceJournalConfig parameterizes a TraceJournal.
	TraceJournalConfig = trace.JournalConfig
	// PipelineHealth is the /debug/pipeline HTTP handler: stage
	// latencies, SLO budget, the lifecycle-event tail, recent traces,
	// and caller-supplied status (an Ingester's Health map, say).
	PipelineHealth = trace.Health
)

// NewTracer returns a pipeline tracer. Nil is a valid *Tracer
// everywhere; construct one only when tracing is wanted.
func NewTracer(cfg TraceConfig) *Tracer { return trace.New(cfg) }

// NewTraceJournal returns a lifecycle-event journal.
func NewTraceJournal(cfg TraceJournalConfig) *TraceJournal { return trace.NewJournal(cfg) }
