package ipin_test

// Runnable examples for the facade's main workflows: computing IRS
// summaries with a pinned worker count, saving and reloading the IRX1
// snapshot, and serving cached oracle queries over HTTP. Each compiles
// and runs under `go test -run Example`; their Output blocks are checked.

import (
	"bytes"
	"fmt"
	"net/http/httptest"

	"ipin"
)

// chainNetwork is the shared fixture: 0→1 at t=100 and 1→2 at t=200, so
// with ω=500 node 0 influences both 1 and 2 through the two-hop channel.
func chainNetwork() *ipin.Network {
	net := ipin.NewNetwork(3)
	net.Add(0, 1, 100)
	net.Add(1, 2, 200)
	net.Sort()
	return net
}

func ExampleSetParallelism() {
	// Pin the library's internal parallel phases (scans, oracle collapse,
	// seed selection) to two workers; zero restores the GOMAXPROCS
	// default. The worker count never changes any result.
	ipin.SetParallelism(2)
	defer ipin.SetParallelism(0)

	irs := ipin.ComputeExact(chainNetwork(), 500)
	oracle := ipin.NewExactOracle(irs)
	fmt.Println(oracle.InfluenceSize(0))
	// Output: 2
}

func ExampleReadApproxIRS() {
	// Compute sketched summaries once, persist them in the IRX1 snapshot
	// format, and reload: the loaded summaries answer identically. On
	// disk this is `cmd/irs -save irs.bin` and `-load irs.bin`.
	irs, err := ipin.ComputeApprox(chainNetwork(), 500, ipin.DefaultPrecision)
	if err != nil {
		fmt.Println(err)
		return
	}
	var snapshot bytes.Buffer
	if _, err := irs.WriteTo(&snapshot); err != nil {
		fmt.Println(err)
		return
	}
	loaded, err := ipin.ReadApproxIRS(&snapshot)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("ω=%d influence≈%.1f\n", loaded.Omega, ipin.NewApproxOracle(loaded).InfluenceSize(0))
	// Output: ω=500 influence≈2.0
}

func ExampleNewQueryServer() {
	// Serve the summaries through the query layer: admission control, a
	// result cache, and a live-reloadable sharded store behind plain
	// http.Handler routes. The second request is served from the cache —
	// byte-identical to the first, with the seed set canonicalized
	// (sorted, deduplicated) in both.
	srv := ipin.NewQueryServer(ipin.ServeConfig{CacheSize: 64})
	srv.LoadExact(ipin.ComputeExact(chainNetwork(), 500))
	handler := srv.Handler()

	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("GET", "/spread?seeds=2,0,1,0", nil))
		fmt.Print(rec.Body.String())
	}
	// Output:
	// {"seeds":[0,1,2],"spread":2}
	// {"seeds":[0,1,2],"spread":2}
}
