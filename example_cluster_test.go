package ipin_test

// Runnable examples for the cluster facade: sharded ingest with
// source-node routing, and the scatter-gather query surface that merges
// per-shard sketches at query time. Each compiles and runs under
// `go test -run Example`; their Output blocks are checked.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"

	"ipin"
)

func ExampleNewClusterIngester() {
	// A two-shard cluster: each shard keeps its own WAL, chunk state, and
	// checkpoint under dir/shard-000 and dir/shard-001, and the router
	// assigns every edge to the shard that owns its SOURCE node's slot.
	dir, err := os.MkdirTemp("", "cluster")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)

	cl, err := ipin.NewClusterIngester(ipin.ClusterConfig{
		Shards: 2,
		Dir:    dir,
		Stream: ipin.IngestConfig{Omega: 500, NumNodes: 5, CheckpointEvery: -1},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer cl.Close(context.Background())

	// Sources 0 and 1 fan out to destinations 2..4. Every edge with the
	// same source lands on the same shard, so each node's sketch is built
	// entirely by one owner.
	for _, e := range []ipin.Interaction{
		{Src: 0, Dst: 2, At: 100},
		{Src: 0, Dst: 3, At: 200},
		{Src: 1, Dst: 3, At: 300},
		{Src: 1, Dst: 4, At: 400},
	} {
		if err := cl.Push(e); err != nil {
			fmt.Println(err)
			return
		}
	}
	if err := cl.Checkpoint(context.Background()); err != nil {
		fmt.Println(err)
		return
	}

	fmt.Println("shards:", cl.NumShards())
	fmt.Println("same owner for node 0:", cl.Route(0) == cl.Route(0))
	fmt.Printf("influence(0) ≈ %.0f\n", cl.Gather().View().Influence(0))
	// Output:
	// shards: 2
	// same owner for node 0: true
	// influence(0) ≈ 2
}

func ExampleNewClusterFrontend() {
	// The scatter-gather query surface: the frontend serves the exact
	// routes and response bodies of the single-node query server, but
	// answers by merging the per-shard sketches for each requested node
	// at query time. The wire bytes match a single-node deployment fed
	// the whole stream.
	dir, err := os.MkdirTemp("", "cluster")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)

	cl, err := ipin.NewClusterIngester(ipin.ClusterConfig{
		Shards: 2,
		Dir:    dir,
		Stream: ipin.IngestConfig{Omega: 500, NumNodes: 5, CheckpointEvery: -1},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer cl.Close(context.Background())

	for _, e := range []ipin.Interaction{
		{Src: 0, Dst: 2, At: 100},
		{Src: 0, Dst: 3, At: 200},
		{Src: 1, Dst: 3, At: 300},
		{Src: 1, Dst: 4, At: 400},
	} {
		if err := cl.Push(e); err != nil {
			fmt.Println(err)
			return
		}
	}
	if err := cl.Checkpoint(context.Background()); err != nil {
		fmt.Println(err)
		return
	}

	handler := ipin.NewClusterFrontend(cl.Gather()).Handler()
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/spread?seeds=1,0", nil))
	var resp struct {
		Seeds  []int   `json:"seeds"`
		Spread float64 `json:"spread"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("seeds=%v spread≈%.0f\n", resp.Seeds, resp.Spread)
	// Output:
	// seeds=[0 1] spread≈3
}
