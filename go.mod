module ipin

go 1.22
