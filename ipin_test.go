package ipin_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"ipin"
)

// buildFig1a constructs the paper's Figure 1a network through the public
// API.
func buildFig1a() *ipin.Network {
	net := ipin.NewNetwork(6)
	const a, b, c, d, e, f = 0, 1, 2, 3, 4, 5
	net.Add(a, d, 1)
	net.Add(e, f, 2)
	net.Add(d, e, 3)
	net.Add(e, b, 4)
	net.Add(a, b, 5)
	net.Add(b, e, 6)
	net.Add(e, c, 7)
	net.Add(b, c, 8)
	net.Sort()
	return net
}

func TestPublicAPIEndToEnd(t *testing.T) {
	net := buildFig1a()
	exact := ipin.ComputeExact(net, 3)
	if exact.IRSSize(0) != 4 {
		t.Fatalf("|σ(a)| = %d, want 4", exact.IRSSize(0))
	}
	approx, err := ipin.ComputeApprox(net, 3, ipin.DefaultPrecision)
	if err != nil {
		t.Fatal(err)
	}
	oe := ipin.NewExactOracle(exact)
	oa := ipin.NewApproxOracle(approx)
	if oe.Spread([]ipin.NodeID{0, 4}) != 5 {
		t.Fatalf("exact spread = %.0f, want 5", oe.Spread([]ipin.NodeID{0, 4}))
	}
	if got := oa.Spread([]ipin.NodeID{0, 4}); got < 4 || got > 7 {
		t.Fatalf("approx spread = %.2f", got)
	}
	seeds := ipin.TopKExact(exact, 2)
	if seeds[0] != 0 {
		t.Fatalf("top seed = %d, want a(0)", seeds[0])
	}
	if got := ipin.TopKExactCELF(exact, 2); oe.Spread(got) != oe.Spread(seeds) {
		t.Fatal("CELF and greedy disagree on coverage")
	}
	if got := ipin.TopKApprox(approx, 2); len(got) != 2 {
		t.Fatalf("approx seeds = %v", got)
	}
	if got := ipin.TopKApproxCELF(approx, 2); len(got) != 2 {
		t.Fatalf("approx CELF seeds = %v", got)
	}
	spread := ipin.AverageSpread(net, seeds, ipin.CascadeConfig{Omega: 3, P: 1, Seed: 1}, 4, 2)
	if spread <= 0 {
		t.Fatalf("cascade spread = %.2f", spread)
	}
	if one := ipin.Simulate(net, seeds, ipin.CascadeConfig{Omega: 3, P: 1, Seed: 1}); one <= 0 {
		t.Fatalf("simulate = %d", one)
	}
}

func TestNetworkIORoundTrip(t *testing.T) {
	in := "alice bob 10\nbob carol 20\n"
	net, table, err := ipin.ReadNetwork(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes != 3 || net.Len() != 2 {
		t.Fatalf("parsed %d nodes / %d interactions", net.NumNodes, net.Len())
	}
	var buf bytes.Buffer
	if err := ipin.WriteNetwork(&buf, net, table); err != nil {
		t.Fatal(err)
	}
	if buf.String() != in {
		t.Fatalf("round trip %q != %q", buf.String(), in)
	}
}

func TestGenerateThroughFacade(t *testing.T) {
	cfg, err := ipin.GenDataset("slashdot", 400)
	if err != nil {
		t.Fatal(err)
	}
	net, err := ipin.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if net.Len() == 0 {
		t.Fatal("empty generated network")
	}
	custom := ipin.GenConfig{
		Name: "custom", Model: ipin.GenUniform,
		Nodes: 50, Interactions: 200, SpanTicks: 10000, Seed: 3,
	}
	net2, err := ipin.Generate(custom)
	if err != nil {
		t.Fatal(err)
	}
	if net2.Len() != 200 {
		t.Fatalf("custom generation produced %d interactions", net2.Len())
	}
	if _, err := ipin.GenDataset("nosuch", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

// ExampleComputeExact demonstrates the core flow on a three-node chain.
func ExampleComputeExact() {
	net := ipin.NewNetwork(3)
	net.Add(0, 1, 100)
	net.Add(1, 2, 250)
	net.Sort()

	// With ω = 200 the chain 0→1→2 (duration 151) is a valid channel.
	irs := ipin.ComputeExact(net, 200)
	fmt.Println(irs.IRSSize(0), irs.IRSSize(1), irs.IRSSize(2))

	// With ω = 100 it is not: node 0 only reaches node 1.
	short := ipin.ComputeExact(net, 100)
	fmt.Println(short.IRSSize(0), short.IRSSize(1), short.IRSSize(2))
	// Output:
	// 2 1 0
	// 1 1 0
}
