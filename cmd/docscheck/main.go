// Command docscheck keeps the README honest: it extracts every ```go
// fenced code block from a markdown file and compiles them all against
// the current tree, so documented snippets cannot silently rot as the
// API moves. CI runs it in the docs job.
//
// Two block shapes are supported:
//
//   - full programs — the block starts with "package ..."; it is compiled
//     verbatim as its own package;
//   - fragments — everything else is wrapped in a package with a fixed
//     import preamble (fmt, log, net/http, os, ipin) and compiled inside a
//     `func _()` body, so fragments must use the variables they declare,
//     exactly like real code.
//
// The blocks are compiled in a throwaway module that replaces the ipin
// module with the working tree, so docscheck needs no network and always
// checks against the code it sits next to.
//
// Usage:
//
//	go run ./cmd/docscheck [-doc README.md]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// fragmentPreamble wraps a non-package README fragment. The blank
// assignments keep the fixed import set legal even when a fragment uses
// only part of it.
const fragmentPreamble = `package snippet

import (
	"fmt"
	"log"
	"net/http"
	"os"

	"ipin"
)

var (
	_ = fmt.Sprint
	_ = log.Fatal
	_ = http.ListenAndServe
	_ = os.Stdout
	_ ipin.NodeID
)

func _() {
`

func main() {
	doc := flag.String("doc", "README.md", "markdown file whose ```go blocks to compile")
	flag.Parse()

	data, err := os.ReadFile(*doc)
	if err != nil {
		fatal(err)
	}
	blocks := extractGoBlocks(string(data))
	if len(blocks) == 0 {
		fatal(fmt.Errorf("no ```go blocks in %s — nothing to check is a check failure", *doc))
	}

	repoDir, err := filepath.Abs(filepath.Dir(*doc))
	if err != nil {
		fatal(err)
	}
	tmp, err := os.MkdirTemp("", "docscheck")
	if err != nil {
		fatal(err)
	}
	gomod := fmt.Sprintf("module docscheck\n\ngo 1.22\n\nrequire ipin v0.0.0\n\nreplace ipin => %s\n", repoDir)
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte(gomod), 0o644); err != nil {
		fatal(err)
	}
	for i, b := range blocks {
		dir := filepath.Join(tmp, fmt.Sprintf("block%02d", i))
		if err := os.Mkdir(dir, 0o755); err != nil {
			fatal(err)
		}
		src := b.text
		if !strings.HasPrefix(strings.TrimSpace(src), "package ") {
			src = fragmentPreamble + src + "}\n"
		}
		if err := os.WriteFile(filepath.Join(dir, "block.go"), []byte(src), 0o644); err != nil {
			fatal(err)
		}
	}

	cmd := exec.Command("go", "build", "./...")
	cmd.Dir = tmp
	if out, err := cmd.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: compilation failed (sources kept in %s):\n%s", tmp, out)
		for i, b := range blocks {
			fmt.Fprintf(os.Stderr, "docscheck: block%02d starts at %s:%d\n", i, *doc, b.line)
		}
		os.Exit(1)
	}
	os.RemoveAll(tmp)
	fmt.Printf("docscheck: %d go block(s) in %s compile\n", len(blocks), *doc)
}

type block struct {
	line int // 1-based line of the opening fence, for error reports
	text string
}

// extractGoBlocks returns the contents of every ```go fenced block.
func extractGoBlocks(doc string) []block {
	var (
		blocks []block
		cur    []string
		start  int
		in     bool
	)
	for i, line := range strings.Split(doc, "\n") {
		switch {
		case !in && strings.TrimSpace(line) == "```go":
			in, start, cur = true, i+1, nil
		case in && strings.TrimSpace(line) == "```":
			in = false
			blocks = append(blocks, block{line: start, text: strings.Join(cur, "\n") + "\n"})
		case in:
			cur = append(cur, line)
		}
	}
	return blocks
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
	os.Exit(1)
}
