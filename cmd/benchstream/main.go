// Command benchstream measures the live ingestion subsystem
// (internal/stream) end to end and writes the results as JSON
// (BENCH_stream.json at the repo root, by convention). It reports the
// numbers that size a deployment:
//
//   - sustained intake: edges/second through Push → reorder → WAL →
//     sealed chunks while interval checkpoints run concurrently;
//   - checkpoint latency: fold + snapshot write per checkpoint
//     (p50/p99), the cost of refreshing the served state — with the
//     amortized incremental fold, proportional to the edges since the
//     previous checkpoint, not the total;
//   - the incremental-vs-full fold A/B: the same final state folded
//     once against the cached previous fold and once from scratch, the
//     speedup the fold cache buys at full size;
//   - freshness: how stale a just-ingested edge is before a published
//     checkpoint makes it queryable (p50/p99);
//   - recovery: wall time and the chunk-sidecar / WAL-suffix split of
//     the replayed edges when the state directory is reopened.
//
// Alongside the numbers it enforces the subsystem's correctness
// contract and exits non-zero on any violation:
//
//   - the final checkpoint of an in-order run is byte-identical to the
//     offline one-pass scan (core.ComputeApprox) over the same log;
//   - a bounded out-of-order replay of the same edges (block shuffle,
//     -skew positions) drops nothing and converges to the same bytes;
//   - re-opening the state directory rebuilds the state from durable
//     chunk sidecars with zero WAL replay — and, again, the same bytes;
//   - after deleting the trailing sidecars (a crash between compactor
//     passes), recovery replays exactly the uncovered WAL suffix and
//     still converges to the same bytes;
//   - the incremental fold beats the full refold by at least
//     -min-speedup at full size;
//   - WAL segments covered by durable sidecars are actually deleted,
//     so the log's disk footprint stays bounded;
//   - with -retain bounding the retained history, resident sketch
//     bytes and on-disk sidecar bytes plateau while the stream grows
//     4×, the final checkpoint stays byte-identical to the offline
//     scan over exactly the retained suffix, and window-restricted
//     spread queries agree with that suffix scan;
//   - with -shards N, a bipartite copy of the log ingested through the
//     slot router at N shards answers every query byte-identically to
//     a single-node server fed the whole copy, with merge-query
//     latency reported alongside 1-shard vs N-shard intake rates.
//
// The report records the host's CPU count and GOMAXPROCS, the same
// convention as BENCH_serve.json: intake is single-writer by design,
// but the fold runs on internal/par workers, so checkpoint latency
// scales with real cores.
//
// Usage:
//
//	benchstream -edges 500000 -out BENCH_stream.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"ipin/internal/cluster"
	"ipin/internal/core"
	"ipin/internal/gen"
	"ipin/internal/graph"
	"ipin/internal/obs"
	"ipin/internal/repl"
	"ipin/internal/serve"
	"ipin/internal/stream"
	"ipin/internal/trace"
)

type report struct {
	Edges           int     `json:"edges"`
	Nodes           int     `json:"nodes"`
	OmegaTicks      int64   `json:"omega_ticks"`
	Skew            int     `json:"skew_positions"`
	CheckpointEvery string  `json:"checkpoint_every"`
	SegmentBytes    int64   `json:"segment_bytes"`
	NumCPU          int     `json:"num_cpu"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	Note            string  `json:"note"`
	SustainedEPS    float64 `json:"sustained_edges_per_sec"`
	IngestSeconds   float64 `json:"ingest_wall_seconds"`
	CloseSeconds    float64 `json:"close_wall_seconds"`
	Checkpoints     int64   `json:"checkpoints"`
	CheckpointP50Ms float64 `json:"checkpoint_p50_ms"`
	CheckpointP99Ms float64 `json:"checkpoint_p99_ms"`
	FreshnessP50Ms  float64 `json:"freshness_p50_ms"`
	FreshnessP99Ms  float64 `json:"freshness_p99_ms"`
	FreshnessN      int     `json:"freshness_samples"`
	WALBytes        int64   `json:"wal_bytes"`
	WALSegments     int64   `json:"wal_segments"`

	// Incremental-vs-full fold A/B over the final state.
	FoldFullMs          float64 `json:"fold_full_refold_ms"`
	FoldIncrementalMs   float64 `json:"fold_incremental_ms"`
	FoldSpeedup         float64 `json:"fold_speedup"`
	IdentityIncremental bool    `json:"identity_incremental_fold"`

	// Durability footprint of the sustained run.
	WALDeletedSegments int64 `json:"wal_deleted_segments"`
	WALLiveSegments    int   `json:"wal_live_segments"`
	ChunkFiles         int64 `json:"chunk_files"`
	ChunkFileBytes     int64 `json:"chunk_file_bytes"`

	// Recovery from the intact directory (sidecars cover everything).
	RecoverySeconds     float64 `json:"recovery_wall_seconds"`
	RecoveredChunkEdges int64   `json:"recovered_chunk_edges"`
	RecoveredWALEdges   int64   `json:"recovered_wal_edges"`

	// Recovery after the trailing sidecars are lost (WAL suffix replay).
	SuffixReplaySeconds  float64 `json:"suffix_recovery_wall_seconds"`
	SuffixReplayWALEdges int64   `json:"suffix_recovery_wal_edges"`
	IdentitySuffix       bool    `json:"identity_suffix_recovery"`

	IdentityInOrder bool  `json:"identity_in_order"`
	IdentitySkewed  bool  `json:"identity_skewed"`
	IdentityRecover bool  `json:"identity_recovered"`
	SkewedDrops     int64 `json:"skewed_drops"`

	// Traced run: per-stage latency attribution from sampled end-to-end
	// edge traces, the freshness SLO, and the accounting that proves
	// every traced edge reached serve-visible exactly once.
	TraceSampleEvery  int                  `json:"trace_sample_every"`
	TraceSampled      int64                `json:"trace_sampled"`
	TraceCompleted    int64                `json:"trace_completed"`
	TraceCancelled    int64                `json:"trace_cancelled"`
	TraceLost         int64                `json:"trace_lost"`
	TraceEvicted      int64                `json:"trace_evicted"`
	TraceInflight     int64                `json:"trace_inflight"`
	TraceStages       []trace.StageLatency `json:"trace_stages"`
	TraceE2EP50Ms     float64              `json:"trace_e2e_p50_ms"`
	TraceE2EP99Ms     float64              `json:"trace_e2e_p99_ms"`
	TraceStageP50Sum  float64              `json:"trace_stage_p50_sum_ms"`
	TraceIndepP50Ms   float64              `json:"trace_independent_e2e_p50_ms"`
	TraceIndepP99Ms   float64              `json:"trace_independent_e2e_p99_ms"`
	TraceIndepSamples int                  `json:"trace_independent_samples"`
	TraceAttrGap      float64              `json:"trace_attribution_gap"`
	SLOObjectiveMs    float64              `json:"slo_objective_ms"`
	SLOTarget         float64              `json:"slo_target"`
	SLOAttainment     float64              `json:"slo_attainment"`
	SLOBudgetRemain   float64              `json:"slo_budget_remaining"`
	SLOBurnRate       float64              `json:"slo_burn_rate"`

	// Tracing overhead A/B: sustained intake with tracing absent vs
	// sampled at 1/1024, interleaved pairs, medians compared.
	OverheadPairs     int     `json:"overhead_pairs"`
	OverheadBaseEPS   float64 `json:"overhead_base_eps"`
	OverheadTracedEPS float64 `json:"overhead_traced_eps"`
	TraceOverhead     float64 `json:"trace_overhead"`

	// Bounded-memory long run (Config.Retain): the stream grows ≥4×
	// across checkpointed quarters while the retained history stays
	// fixed, so resident sketch bytes and on-disk sidecar bytes must
	// plateau instead of tracking stream length; the final checkpoint
	// must stay byte-identical to the offline scan over exactly the
	// suffix its metadata claims is retained.
	RetainTicks          int64          `json:"retain_ticks"`
	BoundedQuarters      []boundedPhase `json:"bounded_quarters"`
	BoundedGrowth        float64        `json:"bounded_edges_growth"`
	BoundedSketchRatio   float64        `json:"bounded_sketch_plateau_ratio"`
	BoundedChunkRatio    float64        `json:"bounded_chunk_plateau_ratio"`
	BoundedRetiredChunks int64          `json:"bounded_retired_chunks"`
	BoundedRetiredEdges  int64          `json:"bounded_retired_edges"`
	IdentityBounded      bool           `json:"identity_bounded_retention"`
	BoundedWindowAgree   bool           `json:"bounded_window_query_agrees"`

	// Cluster phase (-shards): a bipartite copy of the log ingested
	// through the shard router at 1 shard and at -shards shards, the
	// scatter-gather identity gate against a real single-node server,
	// and merge-query latency over the sharded frontend. All shards
	// share this machine's cores, so the sharded edges/s measures
	// routing overhead, not scale-out — see the note.
	ClusterShards     int     `json:"cluster_shards"`
	ClusterEPS1       float64 `json:"cluster_1shard_edges_per_sec"`
	ClusterEPSK       float64 `json:"cluster_sharded_edges_per_sec"`
	ClusterQueryCount int     `json:"cluster_merge_queries"`
	ClusterQueryP50Ms float64 `json:"cluster_merge_query_p50_ms"`
	ClusterQueryP99Ms float64 `json:"cluster_merge_query_p99_ms"`
	IdentityCluster   bool    `json:"identity_cluster_scatter_gather"`

	// Kill-the-primary phase (-replicas): 70% of the log streams through
	// a replication primary into following replicas, the primary is
	// killed, the failover controller promotes the most-caught-up
	// replica, and the remaining 30% resumes on it. Gates: the promoted
	// checkpoint is byte-identical to the offline scan over the acked
	// prefix, the final checkpoint matches the full offline scan, and
	// failover (kill → promoted replica answering queries from sealed
	// state) completes within -failover-deadline.
	ReplReplicas        int     `json:"repl_replicas"`
	ReplFedEdges        int64   `json:"repl_fed_edges_at_kill"`
	ReplPromotePosition int64   `json:"repl_promoted_position"`
	ReplFailoverMs      float64 `json:"repl_failover_ms"`
	ReplFailoverBudget  string  `json:"repl_failover_deadline"`
	ReplResumedEdges    int64   `json:"repl_resumed_edges"`
	IdentityReplPrefix  bool    `json:"identity_repl_promoted_prefix"`
	IdentityReplFinal   bool    `json:"identity_repl_final"`
}

// boundedPhase is one measured quarter of the bounded-memory run, taken
// right after that quarter's forced checkpoint published.
type boundedPhase struct {
	Edges         int64 `json:"edges"`
	SketchBytes   int64 `json:"sketch_bytes"`
	ChunkBytes    int64 `json:"chunk_bytes_on_disk"`
	RetiredChunks int64 `json:"retired_chunks"`
	RetiredEdges  int64 `json:"retired_edges"`
}

// ckptMeta mirrors the checkpoint.meta.json sidecar the ingester writes
// before publishing, so the Publish callback can attribute each publish
// to the edge count and fold time it covers.
type ckptMeta struct {
	Edges        int64   `json:"edges"`
	RetiredEdges int64   `json:"retired_edges"`
	FoldSeconds  float64 `json:"fold_seconds"`
}

func main() {
	var (
		edges        = flag.Int("edges", 500_000, "interactions in the generated log")
		nodes        = flag.Int("nodes", 20_000, "nodes in the generated log")
		window       = flag.Float64("window", 1, "window as % of the time span")
		every        = flag.Duration("checkpoint-every", 250*time.Millisecond, "interval between automatic checkpoints during the sustained run")
		sampleEv     = flag.Int("sample-every", 512, "freshness sample cadence in edges")
		skew         = flag.Int("skew", 64, "out-of-order displacement (positions) for the skewed replay")
		segBytes     = flag.Int64("segment-bytes", 256<<10, "WAL segment size for the sustained run (small enough to exercise compaction)")
		minSpeedup   = flag.Float64("min-speedup", 5, "minimum incremental-vs-full fold speedup (gate)")
		minIntakeEPS = flag.Float64("min-intake-eps", 0, "fail unless sustained intake reaches this many edges/sec (0 = no gate)")
		traceEvery   = flag.Int("trace-every", 256, "edge-trace sampling cadence for the traced run")
		sloObj       = flag.Duration("slo-objective", 2*time.Second, "freshness SLO objective for the traced run")
		sloTarget    = flag.Float64("slo-target", 0.99, "freshness SLO target fraction")
		maxAttrGap   = flag.Float64("max-attr-gap", 0.15, "max relative gap between the stage-p50 sum and the independent e2e p50 (gate)")
		maxTraceOv   = flag.Float64("max-trace-overhead", 0.05, "max sustained-intake regression with 1/1024 tracing (gate)")
		ovPairs      = flag.Int("overhead-pairs", 3, "interleaved off/on ingest pairs for the overhead A/B")
		retainPct    = flag.Float64("retain", 4, "bounded-memory run: retained history as % of the time span (clamped up to -window)")
		maxPlateau   = flag.Float64("max-plateau", 1.5, "bounded-memory run: max sketch-RAM and on-disk growth from the second to the last quarter (gate)")
		shards       = flag.Int("shards", 2, "shard count for the cluster phase (0 disables it)")
		replicas     = flag.Int("replicas", 1, "replica count for the kill-the-primary phase (0 disables it)")
		failoverBy   = flag.Duration("failover-deadline", 5*time.Second, "kill-the-primary phase: max time from kill to the promoted replica answering queries from sealed state (gate)")
		out          = flag.String("out", "BENCH_stream.json", "output JSON path")
	)
	flag.Parse()

	l, err := gen.Generate(gen.Config{
		Name:         "benchstream",
		Model:        gen.ModelUniform,
		Nodes:        *nodes,
		Interactions: *edges,
		SpanTicks:    int64(*edges) * 4,
		Seed:         1,
	})
	if err != nil {
		fatal(err)
	}
	// Strictly increasing timestamps: identity then holds edge-for-edge
	// regardless of arrival order, because neither the reorder buffer's
	// tie-breaking nor its de-tie bump ever fires.
	sort.SliceStable(l.Interactions, func(i, j int) bool { return l.Interactions[i].At < l.Interactions[j].At })
	for i := 1; i < len(l.Interactions); i++ {
		if l.Interactions[i].At <= l.Interactions[i-1].At {
			l.Interactions[i].At = l.Interactions[i-1].At + 1
		}
	}
	omega := l.WindowFromPercent(*window)
	fmt.Fprintf(os.Stderr, "benchstream: %d nodes, %d interactions, ω=%d (NumCPU=%d)\n",
		l.NumNodes, l.Len(), omega, runtime.NumCPU())

	offline, err := core.ComputeApprox(l, omega, core.DefaultPrecision)
	if err != nil {
		fatal(err)
	}
	var offlineBuf bytes.Buffer
	if _, err := offline.WriteTo(&offlineBuf); err != nil {
		fatal(err)
	}

	rep := report{
		Edges:           l.Len(),
		Nodes:           l.NumNodes,
		OmegaTicks:      omega,
		Skew:            *skew,
		CheckpointEvery: every.String(),
		SegmentBytes:    *segBytes,
		NumCPU:          runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Note: "in-order sustained run with interval checkpoints; freshness = push-to-publish age of sampled edges; fold A/B = same final state folded " +
			"with and without the cached previous fold; identity gates compare the final, skewed-replay, sidecar-recovery, and WAL-suffix-recovery " +
			"checkpoints byte-for-byte against the offline one-pass scan",
	}

	// Phase 0: the fold A/B. Build the final chunk sequence once, fold it
	// after warming the cache on all-but-the-last chunk (the steady-state
	// checkpoint: one new chunk against the cached fold), then fold the
	// identical sequence on a cold builder (every pre-cache checkpoint).
	const abChunk = 16384 // stream.Config's default ChunkEdges
	warm, err := core.NewIncrementalApprox(omega, core.DefaultPrecision, l.NumNodes)
	if err != nil {
		fatal(err)
	}
	last := (l.Len() - 1) / abChunk * abChunk // first index of the final chunk
	for lo := 0; lo < last; lo += abChunk {
		if err := warm.AppendChunk(l.Interactions[lo:min(lo+abChunk, last)], l.NumNodes); err != nil {
			fatal(err)
		}
	}
	warm.View().Fold() // prime the cache; untimed
	if err := warm.AppendChunk(l.Interactions[last:], l.NumNodes); err != nil {
		fatal(err)
	}
	incStart := time.Now()
	incSum := warm.View().Fold()
	incD := time.Since(incStart)
	cold, err := core.NewIncrementalApprox(omega, core.DefaultPrecision, l.NumNodes)
	if err != nil {
		fatal(err)
	}
	for lo := 0; lo < l.Len(); lo += abChunk {
		if err := cold.AppendChunk(l.Interactions[lo:min(lo+abChunk, l.Len())], l.NumNodes); err != nil {
			fatal(err)
		}
	}
	fullStart := time.Now()
	cold.View().Fold()
	fullD := time.Since(fullStart)
	var incBuf bytes.Buffer
	if _, err := incSum.WriteTo(&incBuf); err != nil {
		fatal(err)
	}
	rep.FoldFullMs = float64(fullD) / float64(time.Millisecond)
	rep.FoldIncrementalMs = float64(incD) / float64(time.Millisecond)
	rep.FoldSpeedup = float64(fullD) / float64(incD)
	rep.IdentityIncremental = bytes.Equal(incBuf.Bytes(), offlineBuf.Bytes())
	fmt.Fprintf(os.Stderr, "benchstream: fold A/B: full %.0fms, incremental %.0fms (%.1fx), identity %v\n",
		rep.FoldFullMs, rep.FoldIncrementalMs, rep.FoldSpeedup, rep.IdentityIncremental)

	work, err := os.MkdirTemp("", "benchstream-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(work)
	dir1 := filepath.Join(work, "inorder")

	// Phase 1: sustained in-order ingest. One producer pushes flat out
	// while the timer checkpoints; every sample-every-th edge gets a
	// timestamp so the Publish hook can measure push-to-publish age. The
	// small WAL segments force rotations, so compaction (covered-segment
	// deletion behind the sidecar frontier) runs live under load.
	type sample struct {
		index int64 // accepted-edge count at sample time (== emitted order, in-order run)
		at    time.Time
	}
	var (
		smu       sync.Mutex
		samples   []sample
		freshness []time.Duration
		foldTimes []time.Duration
	)
	reg := obs.NewRegistry()
	in, err := stream.New(stream.Config{
		Dir:             dir1,
		Omega:           omega,
		NumNodes:        l.NumNodes,
		CheckpointEvery: *every,
		SegmentBytes:    *segBytes,
		Registry:        reg,
		Publish: func(*core.ApproxSummaries) {
			// The sidecar is renamed into place before Publish runs, and
			// the single compactor serializes publishes, so this read is
			// exactly the checkpoint being published.
			var meta ckptMeta
			raw, err := os.ReadFile(filepath.Join(dir1, stream.CheckpointMetaName))
			if err != nil || json.Unmarshal(raw, &meta) != nil {
				return
			}
			now := time.Now()
			smu.Lock()
			defer smu.Unlock()
			foldTimes = append(foldTimes, time.Duration(meta.FoldSeconds*float64(time.Second)))
			for len(samples) > 0 && samples[0].index <= meta.Edges {
				freshness = append(freshness, now.Sub(samples[0].at))
				samples = samples[1:]
			}
		},
	})
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	for i, e := range l.Interactions {
		if err := in.Push(e); err != nil {
			fatal(err)
		}
		if (i+1)%*sampleEv == 0 {
			smu.Lock()
			samples = append(samples, sample{index: int64(i + 1), at: time.Now()})
			smu.Unlock()
		}
	}
	ingestD := time.Since(start)
	closeStart := time.Now()
	if err := in.Close(context.Background()); err != nil {
		fatal(err)
	}
	closeD := time.Since(closeStart)
	st := in.Stats()
	rep.SustainedEPS = float64(l.Len()) / ingestD.Seconds()
	rep.IngestSeconds = ingestD.Seconds()
	rep.CloseSeconds = closeD.Seconds()
	rep.Checkpoints = st.Checkpoints
	rep.CheckpointP50Ms = percentileMs(foldTimes, 50)
	rep.CheckpointP99Ms = percentileMs(foldTimes, 99)
	rep.FreshnessP50Ms = percentileMs(freshness, 50)
	rep.FreshnessP99Ms = percentileMs(freshness, 99)
	rep.FreshnessN = len(freshness)
	snap := reg.Snapshot()
	if v, ok := snap[stream.MetricWALBytes].(int64); ok {
		rep.WALBytes = v
	}
	if v, ok := snap[stream.MetricWALSegments].(int64); ok {
		rep.WALSegments = v
	}
	if v, ok := snap[stream.MetricWALDeletedSegs].(int64); ok {
		rep.WALDeletedSegments = v
	}
	if v, ok := snap[stream.MetricChunkFiles].(int64); ok {
		rep.ChunkFiles = v
	}
	if v, ok := snap[stream.MetricChunkFileBytes].(int64); ok {
		rep.ChunkFileBytes = v
	}
	liveSegs, err := filepath.Glob(filepath.Join(dir1, "wal-*.seg"))
	if err != nil {
		fatal(err)
	}
	rep.WALLiveSegments = len(liveSegs)
	fmt.Fprintf(os.Stderr, "benchstream: sustained %.0f edges/s over %.2fs, %d checkpoints (p50 %.1fms p99 %.1fms), freshness p50 %.0fms p99 %.0fms (%d samples)\n",
		rep.SustainedEPS, rep.IngestSeconds, rep.Checkpoints,
		rep.CheckpointP50Ms, rep.CheckpointP99Ms, rep.FreshnessP50Ms, rep.FreshnessP99Ms, rep.FreshnessN)
	fmt.Fprintf(os.Stderr, "benchstream: WAL %d segments created, %d deleted, %d live; %d chunk sidecars (%.1f MiB)\n",
		rep.WALSegments, rep.WALDeletedSegments, rep.WALLiveSegments, rep.ChunkFiles, float64(rep.ChunkFileBytes)/(1<<20))

	// Phase 2: identity of the in-order run's final checkpoint.
	rep.IdentityInOrder = checkpointMatches(dir1, offlineBuf.Bytes())
	fmt.Fprintf(os.Stderr, "benchstream: in-order identity: %v\n", rep.IdentityInOrder)

	// Phase 3: skewed replay. Block-shuffling within skew+1 positions
	// bounds displacement, and the slack is set to the worst observed
	// time lateness, so a correct reorder buffer drops nothing. The WAL
	// is kept to a single never-rotated segment so phase 5 can delete
	// trailing sidecars and still find every edge in the log.
	arrival := append([]graph.Interaction(nil), l.Interactions...)
	shuffleBounded(arrival, *skew, 7)
	var slack, maxSeen int64
	maxSeen = -1 << 62
	for _, e := range arrival {
		if late := maxSeen - int64(e.At); late > slack {
			slack = late
		}
		if int64(e.At) > maxSeen {
			maxSeen = int64(e.At)
		}
	}
	dir2 := filepath.Join(work, "skewed")
	in2, err := stream.New(stream.Config{
		Dir:             dir2,
		Omega:           omega,
		NumNodes:        l.NumNodes,
		Slack:           slack,
		CheckpointEvery: -1,
		IdleFlush:       -1,
		SegmentBytes:    1 << 40,
	})
	if err != nil {
		fatal(err)
	}
	for _, e := range arrival {
		if err := in2.Push(e); err != nil {
			fatal(err)
		}
	}
	if err := in2.Close(context.Background()); err != nil {
		fatal(err)
	}
	rep.SkewedDrops = in2.Stats().ReorderDrops
	rep.IdentitySkewed = checkpointMatches(dir2, offlineBuf.Bytes()) && rep.SkewedDrops == 0
	fmt.Fprintf(os.Stderr, "benchstream: skewed identity (skew %d, slack %d ticks): %v (%d drops)\n",
		*skew, slack, rep.IdentitySkewed, rep.SkewedDrops)

	// Phase 4: recovery. Re-opening the in-order directory must rebuild
	// the whole state from durable chunk sidecars — zero WAL replay —
	// and publish a recovery checkpoint before accepting intake.
	var recovered bytes.Buffer
	recStart := time.Now()
	in3, err := stream.New(stream.Config{
		Dir:             dir1,
		Omega:           omega,
		NumNodes:        l.NumNodes,
		CheckpointEvery: -1,
		SegmentBytes:    *segBytes,
		Publish: func(s *core.ApproxSummaries) {
			recovered.Reset()
			if _, err := s.WriteTo(&recovered); err != nil {
				fatal(err)
			}
		},
	})
	if err != nil {
		fatal(err)
	}
	rep.RecoverySeconds = time.Since(recStart).Seconds()
	rst := in3.Stats()
	rep.RecoveredChunkEdges = rst.RecoveredChunkEdges
	rep.RecoveredWALEdges = rst.RecoveredWALEdges
	if err := in3.Close(context.Background()); err != nil {
		fatal(err)
	}
	rep.IdentityRecover = bytes.Equal(recovered.Bytes(), offlineBuf.Bytes())
	fmt.Fprintf(os.Stderr, "benchstream: recovery identity: %v (%.2fs; %d edges from sidecars, %d from WAL)\n",
		rep.IdentityRecover, rep.RecoverySeconds, rep.RecoveredChunkEdges, rep.RecoveredWALEdges)

	// Phase 5: suffix replay. Drop the last two sidecars from the skewed
	// directory — the state a crash between compactor passes leaves —
	// and recovery must rebuild the surviving prefix from sidecars,
	// replay exactly the uncovered WAL suffix, and converge to the same
	// bytes (the stale checkpoint meta, which claims more chunks than
	// survive, must be rejected by the fold-cache seeding).
	sidecars, err := filepath.Glob(filepath.Join(dir2, "chunk-*.blk"))
	if err != nil {
		fatal(err)
	}
	sort.Strings(sidecars) // indices share a width here, so this is numeric
	if len(sidecars) < 3 {
		fatal(fmt.Errorf("phase 5 needs ≥3 sidecars, found %d (raise -edges)", len(sidecars)))
	}
	for _, name := range sidecars[len(sidecars)-2:] {
		if err := os.Remove(name); err != nil {
			fatal(err)
		}
	}
	var suffixRecovered bytes.Buffer
	sufStart := time.Now()
	in4, err := stream.New(stream.Config{
		Dir:             dir2,
		Omega:           omega,
		NumNodes:        l.NumNodes,
		CheckpointEvery: -1,
		SegmentBytes:    1 << 40,
		Publish: func(s *core.ApproxSummaries) {
			suffixRecovered.Reset()
			if _, err := s.WriteTo(&suffixRecovered); err != nil {
				fatal(err)
			}
		},
	})
	if err != nil {
		fatal(err)
	}
	rep.SuffixReplaySeconds = time.Since(sufStart).Seconds()
	sst := in4.Stats()
	rep.SuffixReplayWALEdges = sst.RecoveredWALEdges
	if err := in4.Close(context.Background()); err != nil {
		fatal(err)
	}
	rep.IdentitySuffix = bytes.Equal(suffixRecovered.Bytes(), offlineBuf.Bytes()) &&
		sst.RecoveredChunkEdges+sst.RecoveredWALEdges == int64(l.Len())
	fmt.Fprintf(os.Stderr, "benchstream: suffix-replay identity: %v (%.2fs; %d edges from sidecars, %d from WAL)\n",
		rep.IdentitySuffix, rep.SuffixReplaySeconds, sst.RecoveredChunkEdges, sst.RecoveredWALEdges)

	// Phase 6: the traced run. Same shape as the sustained run, but every
	// trace-every-th accepted edge carries a trace record stamped at each
	// pipeline stage, the Publish hook installs each checkpoint into a
	// real serve store (whose generation swap stamps serve-visible), and
	// an independent push-to-queryable sample stream cross-checks the
	// per-stage attribution: the stage p50s must sum to within
	// -max-attr-gap of the independently measured end-to-end p50.
	dir6 := filepath.Join(work, "traced")
	tr6 := trace.New(trace.Config{
		SampleEvery: *traceEvery,
		RingSize:    1 << 14,
		MaxInflight: 1 << 20,
		SLO:         trace.SLOConfig{Objective: *sloObj, Target: *sloTarget},
	})
	jr6 := trace.NewJournal(trace.JournalConfig{})
	srv := serve.New(serve.Config{Tracer: tr6})
	var (
		tmu      sync.Mutex
		tsamples []sample
		tfresh   []time.Duration
	)
	in6, err := stream.New(stream.Config{
		Dir:             dir6,
		Omega:           omega,
		NumNodes:        l.NumNodes,
		CheckpointEvery: *every,
		SegmentBytes:    *segBytes,
		Tracer:          tr6,
		Journal:         jr6,
		Publish: func(s *core.ApproxSummaries) {
			// Queryable means installed in the serve store, not merely
			// published — LoadApprox is part of the measured freshness.
			srv.LoadApprox(s)
			var meta ckptMeta
			raw, err := os.ReadFile(filepath.Join(dir6, stream.CheckpointMetaName))
			if err != nil || json.Unmarshal(raw, &meta) != nil {
				return
			}
			now := time.Now()
			tmu.Lock()
			defer tmu.Unlock()
			for len(tsamples) > 0 && tsamples[0].index <= meta.Edges {
				tfresh = append(tfresh, now.Sub(tsamples[0].at))
				tsamples = tsamples[1:]
			}
		},
	})
	if err != nil {
		fatal(err)
	}
	for i, e := range l.Interactions {
		if err := in6.Push(e); err != nil {
			fatal(err)
		}
		if (i+1)%*sampleEv == 0 {
			tmu.Lock()
			tsamples = append(tsamples, sample{index: int64(i + 1), at: time.Now()})
			tmu.Unlock()
		}
	}
	if err := in6.Close(context.Background()); err != nil {
		fatal(err)
	}
	counts := tr6.CountsNow()
	ts := tr6.Snapshot(0)
	rep.TraceSampleEvery = *traceEvery
	rep.TraceSampled = counts.Sampled
	rep.TraceCompleted = counts.Completed
	rep.TraceCancelled = counts.Cancelled
	rep.TraceLost = counts.Lost
	rep.TraceEvicted = counts.Evicted
	rep.TraceInflight = counts.Inflight
	// Per-stage percentiles come from the exact stamps in the completed-
	// record ring, not the exposition histograms: the histogram buckets
	// are sized for dashboards, and their interpolation error would eat
	// most of the attribution-gap budget.
	perStage := make([][]time.Duration, trace.NumStages)
	var e2es []time.Duration
	for _, rec := range tr6.Recent(1 << 14) {
		if rec.Outcome != trace.OutcomeCompleted {
			continue
		}
		prev := rec.Stamps[trace.StageAccept]
		for s := trace.StageReorderEmit; s < trace.NumStages; s++ {
			at := rec.Stamps[s]
			if at == 0 {
				continue
			}
			perStage[s] = append(perStage[s], time.Duration(at-prev))
			prev = at
		}
		e2es = append(e2es, time.Duration(rec.Stamps[trace.StageServeVisible]-rec.Stamps[trace.StageAccept]))
	}
	for s := trace.StageReorderEmit; s < trace.NumStages; s++ {
		d := perStage[s]
		st := trace.StageStats{
			Count: int64(len(d)),
			P50Ms: percentileMs(d, 50),
			P90Ms: percentileMs(d, 90),
			P99Ms: percentileMs(d, 99),
		}
		if len(d) > 0 {
			var sum time.Duration
			for _, x := range d {
				sum += x
			}
			st.MeanMs = float64(sum) / float64(len(d)) / float64(time.Millisecond)
		}
		rep.TraceStages = append(rep.TraceStages, trace.StageLatency{Stage: s.String(), StageStats: st})
		rep.TraceStageP50Sum += st.P50Ms
	}
	rep.TraceE2EP50Ms = percentileMs(e2es, 50)
	rep.TraceE2EP99Ms = percentileMs(e2es, 99)
	rep.TraceIndepP50Ms = percentileMs(tfresh, 50)
	rep.TraceIndepP99Ms = percentileMs(tfresh, 99)
	rep.TraceIndepSamples = len(tfresh)
	if rep.TraceIndepP50Ms > 0 {
		rep.TraceAttrGap = abs(rep.TraceStageP50Sum-rep.TraceIndepP50Ms) / rep.TraceIndepP50Ms
	}
	if ts.SLO != nil {
		rep.SLOObjectiveMs = ts.SLO.ObjectiveMs
		rep.SLOTarget = ts.SLO.Target
		rep.SLOAttainment = ts.SLO.Attainment
		rep.SLOBudgetRemain = ts.SLO.BudgetRemaining
		rep.SLOBurnRate = ts.SLO.BurnRate
	}
	fmt.Fprintf(os.Stderr, "benchstream: traced run (1/%d): %d sampled, %d completed; e2e p50 %.0fms, stage-p50 sum %.0fms vs independent %.0fms (gap %.1f%%); SLO attainment %.4f\n",
		*traceEvery, counts.Sampled, counts.Completed,
		rep.TraceE2EP50Ms, rep.TraceStageP50Sum, rep.TraceIndepP50Ms, rep.TraceAttrGap*100, rep.SLOAttainment)

	// Phase 7: the tracing-overhead A/B. Interleaved pairs of identical
	// intake-only ingests (no interval checkpoints, so the comparison
	// isolates the hot path), tracing absent vs sampled at 1/1024, with
	// the regression of the medians gated.
	runIngest := func(i int, ovTr *trace.Tracer) float64 {
		dir := filepath.Join(work, fmt.Sprintf("overhead-%d", i))
		ino, err := stream.New(stream.Config{
			Dir:             dir,
			Omega:           omega,
			NumNodes:        l.NumNodes,
			CheckpointEvery: -1,
			SegmentBytes:    *segBytes,
			Tracer:          ovTr,
		})
		if err != nil {
			fatal(err)
		}
		runtime.GC() // keep the previous run's garbage off this one's clock
		ovStart := time.Now()
		for _, e := range l.Interactions {
			if err := ino.Push(e); err != nil {
				fatal(err)
			}
		}
		// Time through the full drain, not just the push loop: the push
		// loop alone races the absorber for CPU, and how that race goes is
		// scheduler luck, not tracing cost.
		for ino.Stats().Emitted < int64(l.Len()) {
			time.Sleep(time.Millisecond)
		}
		d := time.Since(ovStart)
		if err := ino.Close(context.Background()); err != nil {
			fatal(err)
		}
		os.RemoveAll(dir)
		return float64(l.Len()) / d.Seconds()
	}
	runIngest(2**ovPairs, nil) // untimed warmup: page cache, heap sizing
	var offEPS, onEPS, ratios []float64
	for i := 0; i < *ovPairs; i++ {
		off := runIngest(2*i, nil)
		on := runIngest(2*i+1, trace.New(trace.Config{SampleEvery: 1024, MaxInflight: 1 << 20}))
		offEPS = append(offEPS, off)
		onEPS = append(onEPS, on)
		ratios = append(ratios, on/off)
	}
	rep.OverheadPairs = *ovPairs
	rep.OverheadBaseEPS = median(offEPS)
	rep.OverheadTracedEPS = median(onEPS)
	// The overhead is the median of the paired ratios, not the ratio of
	// the medians: machine noise is correlated within a back-to-back
	// pair, so pairing cancels most of it.
	rep.TraceOverhead = 1 - median(ratios)
	fmt.Fprintf(os.Stderr, "benchstream: overhead A/B (%d pairs): %.0f edges/s untraced, %.0f edges/s at 1/1024 (%.2f%% overhead)\n",
		*ovPairs, rep.OverheadBaseEPS, rep.OverheadTracedEPS, rep.TraceOverhead*100)

	// Phase 8: the bounded-memory long run. Retain fixes the retained
	// history in ticks while the same stream grows 4× across forced
	// checkpoints, so resident sketch bytes and the on-disk sidecar
	// footprint must plateau instead of tracking the stream. Each
	// quarter is measured right after its checkpoint; the plateau gate
	// compares the last quarter against the second (the first still
	// carries pre-retention history, because chunks are only shed once
	// their sidecars are durable). Afterwards the final checkpoint must
	// be byte-identical to the offline one-pass scan over exactly the
	// suffix its metadata claims is retained, and a window-restricted
	// spread query must agree between the published summaries and that
	// offline suffix scan.
	retain := l.WindowFromPercent(*retainPct)
	if retain < omega {
		retain = omega
	}
	rep.RetainTicks = retain
	dir8 := filepath.Join(work, "bounded")
	reg8 := obs.NewRegistry()
	var boundedSum *core.ApproxSummaries
	in8, err := stream.New(stream.Config{
		Dir:             dir8,
		Omega:           omega,
		NumNodes:        l.NumNodes,
		Retain:          retain,
		ProfileWindow:   omega,
		CheckpointEvery: -1,
		IdleFlush:       -1,
		SegmentBytes:    *segBytes,
		Registry:        reg8,
		// The compactor serializes publishes and Close joins it, so after
		// Close this holds the final checkpoint's summaries.
		Publish: func(s *core.ApproxSummaries) { boundedSum = s },
	})
	if err != nil {
		fatal(err)
	}
	quarter := (l.Len() + 3) / 4
	for q := 0; q < 4; q++ {
		for _, e := range l.Interactions[q*quarter : min((q+1)*quarter, l.Len())] {
			if err := in8.Push(e); err != nil {
				fatal(err)
			}
		}
		if err := in8.Checkpoint(context.Background()); err != nil {
			fatal(err)
		}
		snap8 := reg8.Snapshot()
		st8 := in8.Stats()
		ph := boundedPhase{Edges: st8.Emitted, RetiredChunks: st8.RetiredChunks, RetiredEdges: st8.RetiredEdges}
		if v, ok := snap8[stream.MetricSketchBytes].(int64); ok {
			ph.SketchBytes = v
		}
		var written, reclaimed int64
		if v, ok := snap8[stream.MetricChunkFileBytes].(int64); ok {
			written = v
		}
		if v, ok := snap8[stream.MetricChunkRetiredBytes].(int64); ok {
			reclaimed = v
		}
		ph.ChunkBytes = written - reclaimed
		rep.BoundedQuarters = append(rep.BoundedQuarters, ph)
	}
	if err := in8.Close(context.Background()); err != nil {
		fatal(err)
	}
	first, base, lastQ := rep.BoundedQuarters[0], rep.BoundedQuarters[1], rep.BoundedQuarters[3]
	rep.BoundedGrowth = float64(lastQ.Edges) / float64(first.Edges)
	rep.BoundedRetiredChunks = lastQ.RetiredChunks
	rep.BoundedRetiredEdges = lastQ.RetiredEdges
	if base.SketchBytes > 0 {
		rep.BoundedSketchRatio = float64(lastQ.SketchBytes) / float64(base.SketchBytes)
	}
	if base.ChunkBytes > 0 {
		rep.BoundedChunkRatio = float64(lastQ.ChunkBytes) / float64(base.ChunkBytes)
	}
	var meta8 ckptMeta
	raw8, err := os.ReadFile(filepath.Join(dir8, stream.CheckpointMetaName))
	if err != nil {
		fatal(err)
	}
	if err := json.Unmarshal(raw8, &meta8); err != nil {
		fatal(err)
	}
	suffix := &graph.Log{NumNodes: l.NumNodes, Interactions: l.Interactions[meta8.RetiredEdges:]}
	sufSum, err := core.ComputeApprox(suffix, omega, core.DefaultPrecision)
	if err != nil {
		fatal(err)
	}
	var sufBuf bytes.Buffer
	if _, err := sufSum.WriteTo(&sufBuf); err != nil {
		fatal(err)
	}
	rep.IdentityBounded = checkpointMatches(dir8, sufBuf.Bytes())
	windowSeeds := []graph.NodeID{0, 1, 2}
	windowAt := int64(l.Interactions[l.Len()-1].At) - omega + 1
	rep.BoundedWindowAgree = boundedSum != nil &&
		boundedSum.SpreadEstimateWindow(windowSeeds, windowAt, omega) == sufSum.SpreadEstimateWindow(windowSeeds, windowAt, omega)
	fmt.Fprintf(os.Stderr, "benchstream: bounded run (retain %d ticks): edges ×%.1f, sketch %.0f KiB → %.0f KiB (×%.2f), disk %.0f KiB → %.0f KiB (×%.2f), %d chunks / %d edges retired, suffix identity %v, window agree %v\n",
		retain, rep.BoundedGrowth,
		float64(base.SketchBytes)/1024, float64(lastQ.SketchBytes)/1024, rep.BoundedSketchRatio,
		float64(base.ChunkBytes)/1024, float64(lastQ.ChunkBytes)/1024, rep.BoundedChunkRatio,
		rep.BoundedRetiredChunks, rep.BoundedRetiredEdges, rep.IdentityBounded, rep.BoundedWindowAgree)

	// Phase 9: the cluster phase. The scatter-gather identity is exact on
	// streams without cross-shard multi-hop channels, so the phase runs
	// over a bipartite copy of the log: sources in the lower half of the
	// node space, destinations in the upper half, timestamps unchanged
	// (still strictly increasing). The same copy is ingested three ways —
	// a real single-node stack (stream.Ingester into serve.Server), a
	// 1-shard cluster, and a -shards cluster — then every battery query
	// is compared byte-for-byte between the single-node server and the
	// sharded frontend, and merge-query latency is sampled on the
	// frontend. Intake here is forced-checkpoint only: the number
	// isolates routing overhead, and since every shard shares this
	// machine's cores it does NOT measure scale-out.
	if *shards > 0 {
		half := l.NumNodes / 2
		bip := make([]graph.Interaction, l.Len())
		for i, e := range l.Interactions {
			bip[i] = graph.Interaction{
				Src: graph.NodeID(int(e.Src) % half),
				Dst: graph.NodeID(half + int(e.Dst)%half),
				At:  e.At,
			}
		}
		rep.ClusterShards = *shards

		srv9 := serve.New(serve.Config{})
		in9, err := stream.New(stream.Config{
			Dir:             filepath.Join(work, "cluster-single"),
			Omega:           omega,
			NumNodes:        l.NumNodes,
			CheckpointEvery: -1,
			IdleFlush:       -1,
			Publish:         srv9.LoadApprox,
		})
		if err != nil {
			fatal(err)
		}
		for _, e := range bip {
			if err := in9.Push(e); err != nil {
				fatal(err)
			}
		}
		if err := in9.Close(context.Background()); err != nil {
			fatal(err)
		}
		singleMux := http.NewServeMux()
		srv9.Register(singleMux)

		runCluster := func(k int) (*cluster.Ingester, float64) {
			cl, err := cluster.New(cluster.Config{
				Shards: k,
				Dir:    filepath.Join(work, fmt.Sprintf("cluster-%d", k)),
				Stream: stream.Config{
					Omega:           omega,
					NumNodes:        l.NumNodes,
					CheckpointEvery: -1,
					IdleFlush:       -1,
				},
			})
			if err != nil {
				fatal(err)
			}
			clStart := time.Now()
			for _, e := range bip {
				if err := cl.Push(e); err != nil {
					fatal(err)
				}
			}
			for cl.Stats().Emitted < int64(len(bip)) {
				time.Sleep(time.Millisecond)
			}
			eps := float64(len(bip)) / time.Since(clStart).Seconds()
			if err := cl.Checkpoint(context.Background()); err != nil {
				fatal(err)
			}
			return cl, eps
		}
		cl1, eps1 := runCluster(1)
		rep.ClusterEPS1 = eps1
		if err := cl1.Close(context.Background()); err != nil {
			fatal(err)
		}
		clK, epsK := runCluster(*shards)
		rep.ClusterEPSK = epsK
		frontend := cluster.NewFrontend(clK.Gather()).Handler()

		mid := int64(bip[len(bip)/2].At)
		battery := []string{
			"/influence?node=0",
			fmt.Sprintf("/influence?node=%d", half-1),
			fmt.Sprintf("/influence?node=%d", half),
			fmt.Sprintf("/influence?node=%d", l.NumNodes-1),
			"/spread?seeds=0,1,2,3,4",
			fmt.Sprintf("/spread?seeds=7,%d,%d", half+3, l.NumNodes-1),
			"/topk?k=5",
			fmt.Sprintf("/spreadby?seeds=0,1,2&deadline=%d", mid),
			fmt.Sprintf("/spreadwindow?seeds=0,1,2&at=%d", mid),
			"/stats",
		}
		rep.IdentityCluster = true
		for _, q := range battery {
			wantRec := httptest.NewRecorder()
			singleMux.ServeHTTP(wantRec, httptest.NewRequest("GET", q, nil))
			gotRec := httptest.NewRecorder()
			frontend.ServeHTTP(gotRec, httptest.NewRequest("GET", q, nil))
			if wantRec.Code != gotRec.Code || wantRec.Body.String() != gotRec.Body.String() {
				rep.IdentityCluster = false
				fmt.Fprintf(os.Stderr, "benchstream: cluster identity violation on %s:\n  single: %d %s  merged: %d %s",
					q, wantRec.Code, wantRec.Body.String(), gotRec.Code, gotRec.Body.String())
			}
		}

		// Merge-query latency: repeated battery sweeps against the sharded
		// frontend, each request timed individually. Every query merges the
		// requested nodes' per-shard sketches at answer time.
		var qlat []time.Duration
		for sweep := 0; sweep < 40; sweep++ {
			for _, q := range battery {
				req := httptest.NewRequest("GET", q, nil)
				qStart := time.Now()
				frontend.ServeHTTP(httptest.NewRecorder(), req)
				qlat = append(qlat, time.Since(qStart))
			}
		}
		rep.ClusterQueryCount = len(qlat)
		rep.ClusterQueryP50Ms = percentileMs(qlat, 50)
		rep.ClusterQueryP99Ms = percentileMs(qlat, 99)
		if err := clK.Close(context.Background()); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchstream: cluster phase: identity %v at %d shards; intake %.0f edges/s (1 shard) vs %.0f edges/s (%d shards, shared cores); merge query p50 %.2fms p99 %.2fms (%d queries)\n",
			rep.IdentityCluster, *shards, rep.ClusterEPS1, rep.ClusterEPSK, *shards,
			rep.ClusterQueryP50Ms, rep.ClusterQueryP99Ms, rep.ClusterQueryCount)
	}

	// Phase 10: kill the primary. 70% of the log streams through a
	// replication primary while -replicas replicas follow over TCP, each
	// publishing read-only checkpoints into its own query server. The
	// primary is then killed outright; the failover controller notices
	// the silence, promotes the most-caught-up replica (sealing the
	// replicated tail under a new epoch), and the remaining 30% of the
	// log resumes on the promoted ingester. Three gates: the promoted
	// checkpoint is byte-identical to the offline scan over exactly the
	// replicated prefix, the failover (kill → promoted replica answering
	// queries from sealed state) beats -failover-deadline, and the final
	// checkpoint after the resumed feed matches the full offline scan.
	if *replicas > 0 {
		rep.ReplReplicas = *replicas
		rep.ReplFailoverBudget = failoverBy.String()
		cut := l.Len() * 7 / 10
		in10, err := stream.New(stream.Config{
			Dir:             filepath.Join(work, "repl-primary"),
			Omega:           omega,
			NumNodes:        l.NumNodes,
			CheckpointEvery: -1,
			IdleFlush:       -1,
		})
		if err != nil {
			fatal(err)
		}
		prim, err := repl.NewPrimary(repl.PrimaryConfig{Ingester: in10, HeartbeatEvery: 50 * time.Millisecond})
		if err != nil {
			fatal(err)
		}
		followers := make([]*repl.Replica, *replicas)
		servers := make([]*serve.Server, *replicas)
		dirs := make([]string, *replicas)
		for i := range followers {
			srv := serve.New(serve.Config{ReadOnly: true})
			dirs[i] = filepath.Join(work, fmt.Sprintf("repl-replica-%d", i))
			// Followers checkpoint as they apply, like a real read-serving
			// replica: the promote fold is then incremental over a warm
			// cache, so the measured failover time is detection + sealing
			// a bounded tail, not a cold refold of the whole replicated
			// history. The cadence is edge-count based (every ~20% of the
			// stream) rather than the run's wall-clock interval — a
			// replica catching up over a fast local pipe applies edges far
			// above the sustained rate, and an interval shorter than one
			// fold would make it fold back to back instead of applying.
			r, err := repl.NewReplica(repl.ReplicaConfig{
				Dir:             dirs[i],
				PrimaryAddr:     prim.Addr(),
				CheckpointEvery: -1,
				CheckpointEdges: max(l.Len()/5, 1),
				Publish:         srv.LoadApprox,
			})
			if err != nil {
				fatal(err)
			}
			followers[i], servers[i] = r, srv
		}
		ctl, err := repl.NewController(repl.ControllerConfig{Replicas: followers, Timeout: 500 * time.Millisecond})
		if err != nil {
			fatal(err)
		}

		for _, e := range l.Interactions[:cut] {
			if err := in10.Push(e); err != nil {
				fatal(err)
			}
		}
		if err := in10.Checkpoint(context.Background()); err != nil {
			fatal(err)
		}
		fed := in10.Stats().Emitted
		rep.ReplFedEdges = fed
		catchup := time.Now().Add(120 * time.Second)
		lastLog := time.Now()
		for _, r := range followers {
			for r.Position() < fed {
				if time.Now().After(catchup) {
					pprof.Lookup("goroutine").WriteTo(os.Stderr, 1)
					fatal(fmt.Errorf("replica stuck at %d/%d before the kill (sessions=%d, err=%v)", r.Position(), fed, prim.Sessions(), r.Err()))
				}
				if time.Since(lastLog) > 10*time.Second {
					fmt.Fprintf(os.Stderr, "benchstream: replica catch-up %d/%d (sessions=%d)\n", r.Position(), fed, prim.Sessions())
					lastLog = time.Now()
				}
				time.Sleep(time.Millisecond)
			}
		}

		// The kill: listener and ingester gone, sessions severed.
		killAt := time.Now()
		prim.Close()
		if err := in10.Close(context.Background()); err != nil {
			fatal(err)
		}
		var winner *repl.Replica
		for winner == nil {
			if time.Since(killAt) > 60*time.Second {
				fatal(fmt.Errorf("failover controller never promoted"))
			}
			winner = ctl.Promoted()
			time.Sleep(time.Millisecond)
		}
		ctl.Stop()
		wi := 0
		for i, r := range followers {
			if r == winner {
				wi = i
			}
		}
		// Failover completes when the promoted replica answers a query
		// from its sealed (post-promotion) state: Promote checkpoints,
		// the checkpoint publishes, the server answers.
		q := httptest.NewRequest("GET", "/influence?node=0", nil)
		qRec := httptest.NewRecorder()
		servers[wi].Handler().ServeHTTP(qRec, q)
		if qRec.Code != http.StatusOK {
			fatal(fmt.Errorf("promoted replica answered %d to the failover query", qRec.Code))
		}
		rep.ReplFailoverMs = float64(time.Since(killAt).Microseconds()) / 1e3
		pos := winner.Position()
		rep.ReplPromotePosition = pos

		prefix := &graph.Log{NumNodes: l.NumNodes, Interactions: l.Interactions[:pos]}
		offPrefix, err := core.ComputeApprox(prefix, omega, core.DefaultPrecision)
		if err != nil {
			fatal(err)
		}
		var offPrefixBuf bytes.Buffer
		if _, err := offPrefix.WriteTo(&offPrefixBuf); err != nil {
			fatal(err)
		}
		rep.IdentityReplPrefix = checkpointMatches(dirs[wi], offPrefixBuf.Bytes())

		// Intake resumes on the promoted replica; the final state must
		// match the offline scan over the whole log.
		for _, e := range l.Interactions[cut:] {
			if err := winner.Ingester().Push(e); err != nil {
				fatal(err)
			}
		}
		if err := winner.Ingester().Checkpoint(context.Background()); err != nil {
			fatal(err)
		}
		rep.ReplResumedEdges = int64(l.Len() - cut)
		rep.IdentityReplFinal = checkpointMatches(dirs[wi], offlineBuf.Bytes())
		for _, r := range followers {
			if err := r.Close(context.Background()); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "benchstream: kill-the-primary: %d replica(s), killed at %d edges, promoted at position %d in %.0fms (deadline %s); prefix identity %v, final identity %v\n",
			*replicas, fed, pos, rep.ReplFailoverMs, *failoverBy, rep.IdentityReplPrefix, rep.IdentityReplFinal)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	f.Close()
	fmt.Fprintf(os.Stderr, "benchstream: wrote %s\n", *out)

	switch {
	case !rep.IdentityInOrder:
		fatal(fmt.Errorf("in-order checkpoint differs from the offline scan"))
	case !rep.IdentitySkewed:
		fatal(fmt.Errorf("skewed replay diverged (drops=%d)", rep.SkewedDrops))
	case !rep.IdentityRecover:
		fatal(fmt.Errorf("recovery checkpoint differs from the offline scan"))
	case !rep.IdentityIncremental:
		fatal(fmt.Errorf("incremental fold differs from the offline scan"))
	case !rep.IdentitySuffix:
		fatal(fmt.Errorf("suffix-replay recovery diverged"))
	case rep.Checkpoints < 1:
		fatal(fmt.Errorf("sustained run published no checkpoints"))
	case *minIntakeEPS > 0 && rep.SustainedEPS < *minIntakeEPS:
		fatal(fmt.Errorf("sustained intake %.0f edges/s below the %.0f floor", rep.SustainedEPS, *minIntakeEPS))
	case rep.FoldSpeedup < *minSpeedup:
		fatal(fmt.Errorf("fold speedup %.2fx below the %.2fx gate", rep.FoldSpeedup, *minSpeedup))
	case rep.RecoveredWALEdges != 0 || rep.RecoveredChunkEdges != int64(l.Len()):
		fatal(fmt.Errorf("recovery replayed %d WAL edges (want 0) and %d sidecar edges (want %d)",
			rep.RecoveredWALEdges, rep.RecoveredChunkEdges, l.Len()))
	case rep.WALDeletedSegments < 1:
		fatal(fmt.Errorf("no WAL segments deleted across %d rotations", rep.WALSegments))
	case rep.SuffixReplayWALEdges < 1:
		fatal(fmt.Errorf("suffix recovery replayed no WAL edges — the deleted sidecars were not exercised"))
	case rep.TraceSampled < 1:
		fatal(fmt.Errorf("traced run sampled no edges (%d edges at 1/%d — raise -edges or lower -trace-every)", rep.Edges, rep.TraceSampleEvery))
	case rep.TraceCompleted != rep.TraceSampled || rep.TraceInflight != 0 ||
		rep.TraceLost != 0 || rep.TraceEvicted != 0 || rep.TraceCancelled != 0:
		fatal(fmt.Errorf("traced edges not exactly-once: sampled %d, completed %d, inflight %d, lost %d, evicted %d, cancelled %d",
			rep.TraceSampled, rep.TraceCompleted, rep.TraceInflight, rep.TraceLost, rep.TraceEvicted, rep.TraceCancelled))
	case rep.TraceAttrGap > *maxAttrGap:
		fatal(fmt.Errorf("stage-p50 sum %.1fms vs independent e2e p50 %.1fms: gap %.1f%% exceeds the %.0f%% gate",
			rep.TraceStageP50Sum, rep.TraceIndepP50Ms, rep.TraceAttrGap*100, *maxAttrGap*100))
	case rep.TraceOverhead > *maxTraceOv:
		fatal(fmt.Errorf("1/1024 tracing costs %.2f%% sustained intake, above the %.0f%% gate",
			rep.TraceOverhead*100, *maxTraceOv*100))
	case rep.BoundedGrowth < 4:
		fatal(fmt.Errorf("bounded-memory run grew %.1fx, want ≥4x", rep.BoundedGrowth))
	case rep.BoundedRetiredChunks < 1:
		fatal(fmt.Errorf("bounded-memory run retired no chunks — raise -edges or shrink -retain"))
	case rep.BoundedSketchRatio > *maxPlateau:
		fatal(fmt.Errorf("sketch RAM grew ×%.2f from the second to the last quarter, above the ×%.2f plateau gate",
			rep.BoundedSketchRatio, *maxPlateau))
	case rep.BoundedChunkRatio > *maxPlateau:
		fatal(fmt.Errorf("on-disk chunk bytes grew ×%.2f from the second to the last quarter, above the ×%.2f plateau gate",
			rep.BoundedChunkRatio, *maxPlateau))
	case !rep.IdentityBounded:
		fatal(fmt.Errorf("bounded-memory checkpoint differs from the offline scan over the retained suffix"))
	case !rep.BoundedWindowAgree:
		fatal(fmt.Errorf("window-restricted spread disagrees between the bounded run and the offline suffix scan"))
	case *shards > 0 && !rep.IdentityCluster:
		fatal(fmt.Errorf("scatter-gather answers at %d shards differ from the single-node server", *shards))
	case *replicas > 0 && !rep.IdentityReplPrefix:
		fatal(fmt.Errorf("promoted replica checkpoint differs from the offline scan over the replicated prefix"))
	case *replicas > 0 && !rep.IdentityReplFinal:
		fatal(fmt.Errorf("post-failover final checkpoint differs from the full offline scan"))
	case *replicas > 0 && rep.ReplFailoverMs > float64(failoverBy.Milliseconds()):
		fatal(fmt.Errorf("failover took %.0fms, above the %s deadline", rep.ReplFailoverMs, *failoverBy))
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// median returns the middle value of the sorted copy, 0 on empty input.
func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64{}, v...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// checkpointMatches reads dir's checkpoint snapshot and compares it
// byte-for-byte with the offline encoding.
func checkpointMatches(dir string, want []byte) bool {
	got, err := os.ReadFile(filepath.Join(dir, stream.CheckpointName))
	if err != nil {
		fatal(err)
	}
	return bytes.Equal(got, want)
}

// shuffleBounded permutes within blocks of skew+1 positions, the same
// bounded-displacement contract cmd/gennet -stream emits.
func shuffleBounded(edges []graph.Interaction, skew int, seed int64) {
	if skew <= 0 {
		return
	}
	// Small deterministic LCG; benchmarks must not depend on rand's
	// default source changing between releases.
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for lo := 0; lo < len(edges); lo += skew + 1 {
		hi := min(lo+skew+1, len(edges))
		for i := hi - lo - 1; i > 0; i-- {
			j := next(i + 1)
			edges[lo+i], edges[lo+j] = edges[lo+j], edges[lo+i]
		}
	}
}

// percentileMs returns the p-th percentile in milliseconds
// (nearest-rank on the sorted copy), 0 on an empty slice.
func percentileMs(d []time.Duration, p int) float64 {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration{}, d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := len(s) * p / 100
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return float64(s[idx]) / float64(time.Millisecond)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchstream: %v\n", err)
	os.Exit(1)
}
