// Command irs computes Influence Reachability Sets over an interaction
// network and answers the queries of the paper: per-node influence sizes,
// influence-oracle spreads for a seed set, and top-k influencer selection.
//
// The input is the text format of internal/graph ("src dst time" per
// line). The window is given as a percentage of the time span (-window,
// the paper's convention) or in absolute ticks (-omega).
//
// Usage:
//
//	irs -in net.txt -window 10 -topk 10
//	irs -in net.txt -omega 86400 -exact -topk 5
//	irs -in net.txt -window 10 -spread alice,bob,carol
//	irs -in net.txt -window 10 -sizes
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"ipin/internal/cascade"
	"ipin/internal/core"
	"ipin/internal/graph"
	"ipin/internal/obs"
	"ipin/internal/swhll"
	"ipin/internal/temporal"
	"ipin/internal/vhll"
)

func main() {
	var (
		in          = flag.String("in", "", "input interaction log (required)")
		windowPct   = flag.Float64("window", 10, "window length as %% of the time span")
		omega       = flag.Int64("omega", 0, "window length in ticks (overrides -window)")
		exact       = flag.Bool("exact", false, "use the exact algorithm instead of the sketch")
		precision   = flag.Int("precision", core.DefaultPrecision, "sketch precision (β = 2^precision)")
		topk        = flag.Int("topk", 0, "select the top-k influencers")
		celf        = flag.Bool("celf", false, "use CELF lazy greedy for -topk")
		spread      = flag.String("spread", "", "comma-separated seed names: print their combined influence")
		sizes       = flag.Bool("sizes", false, "print every node's influence size, largest first")
		save        = flag.String("save", "", "write the computed summaries to this file")
		load        = flag.String("load", "", "load summaries from this file instead of computing them")
		channel     = flag.String("channel", "", "two comma-separated node names: print a witness information channel")
		progress    = flag.Bool("progress", false, "report phase progress periodically on stderr")
		metricsOut  = flag.String("metrics-out", "", "write final runtime metrics as JSON to this file")
		parallelism = flag.Int("parallelism", 0, "worker goroutines for the scan, collapse, and selection phases (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	core.SetParallelism(*parallelism)
	// Telemetry is opt-in: without these flags every instrumented event
	// in the libraries below stays a free no-op.
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		core.InstallMetrics(reg)
		vhll.InstallMetrics(reg)
		swhll.InstallMetrics(reg)
		cascade.InstallMetrics(reg)
		// Runtime series too, so the JSON dump records the process's heap
		// footprint and GC behavior next to the workload counters.
		obs.InstallRuntimeMetrics(reg)
	}
	if *progress {
		core.SetProgressSink(obs.TextSink(os.Stderr, "irs: "))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	l, table, err := graph.ReadLog(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if !l.HasDistinctTimes() {
		n := l.Detie()
		fmt.Fprintf(os.Stderr, "irs: separated %d tied timestamps\n", n)
	}
	w := *omega
	if w <= 0 {
		w = l.WindowFromPercent(*windowPct)
	}
	fmt.Printf("network: %d nodes, %d interactions, ω = %d ticks\n", l.NumNodes, l.Len(), w)

	var (
		oracle core.Oracle
		top    func(k int) []graph.NodeID
	)
	if *exact {
		var s *core.ExactSummaries
		if *load != "" {
			s = loadSummaries(*load, true).(*core.ExactSummaries)
			fmt.Printf("loaded exact summaries from %s (ω = %d)\n", *load, s.Omega)
		} else {
			s = core.ComputeExactParallel(l, w, *parallelism)
		}
		if *save != "" {
			saveSummaries(*save, s)
		}
		oracle = core.ExactOracle{S: s}
		top = func(k int) []graph.NodeID {
			if *celf {
				return core.TopKExactCELF(s, k)
			}
			return core.TopKExact(s, k)
		}
		fmt.Printf("exact summaries: %d entries, %d bytes\n", s.EntryCount(), s.MemoryBytes())
	} else {
		var s *core.ApproxSummaries
		if *load != "" {
			s = loadSummaries(*load, false).(*core.ApproxSummaries)
			fmt.Printf("loaded sketches from %s (ω = %d, β = %d)\n", *load, s.Omega, 1<<s.Precision)
		} else {
			var err error
			s, err = core.ComputeApproxParallel(l, w, *precision, *parallelism)
			if err != nil {
				fatal(err)
			}
		}
		if *save != "" {
			saveSummaries(*save, s)
		}
		oracle = core.NewApproxOracle(s)
		top = func(k int) []graph.NodeID {
			if *celf {
				return core.TopKApproxCELF(s, k)
			}
			return core.TopKApproxSeeds(s, k)
		}
		fmt.Printf("sketches: β = %d, %d entries, %d bytes\n", 1<<s.Precision, s.EntryCount(), s.MemoryBytes())
	}

	if *sizes {
		printSizes(oracle, table)
	}
	if *channel != "" {
		printChannel(l, table, *channel, w)
	}
	if *spread != "" {
		seeds, err := parseSeeds(*spread, table)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("spread(%s) = %.1f\n", *spread, oracle.Spread(seeds))
	}
	if *topk > 0 {
		seeds := top(*topk)
		fmt.Printf("top %d influencers:\n", len(seeds))
		for i, u := range seeds {
			fmt.Printf("%3d. %-24s influence %.1f\n", i+1, table.Name(u), oracle.InfluenceSize(u))
		}
		fmt.Printf("combined spread: %.1f\n", oracle.Spread(seeds))
	}
	if *metricsOut != "" {
		writeMetrics(*metricsOut, reg)
	}
}

// writeMetrics dumps the final metric state as JSON, the shape the BENCH
// trajectory files collect across runs.
func writeMetrics(path string, reg *obs.Registry) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := reg.WriteJSON(f); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "irs: wrote metrics to %s\n", path)
}

func printSizes(oracle core.Oracle, table *graph.NodeTable) {
	n := oracle.NumNodes()
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return oracle.InfluenceSize(order[i]) > oracle.InfluenceSize(order[j])
	})
	for _, u := range order {
		if s := oracle.InfluenceSize(u); s > 0 {
			fmt.Printf("%-24s %.1f\n", table.Name(u), s)
		}
	}
}

// printChannel exhibits a witness information channel between the two
// named nodes, or reports that none exists within the window.
func printChannel(l *graph.Log, table *graph.NodeTable, pair string, omega int64) {
	names := strings.Split(pair, ",")
	if len(names) != 2 {
		fatal(fmt.Errorf("-channel wants exactly two names, got %q", pair))
	}
	ids, err := parseSeeds(pair, table)
	if err != nil {
		fatal(err)
	}
	ch := temporal.FindChannel(l, ids[0], ids[1], omega)
	if ch == nil {
		fmt.Printf("no information channel %s→%s within ω\n", strings.TrimSpace(names[0]), strings.TrimSpace(names[1]))
		return
	}
	fmt.Printf("channel %s→%s (duration %d, ends %d):\n", strings.TrimSpace(names[0]), strings.TrimSpace(names[1]), ch.Duration(), ch.End())
	for _, e := range ch {
		fmt.Printf("  %s → %s @ %d\n", table.Name(e.Src), table.Name(e.Dst), e.At)
	}
}

func parseSeeds(csv string, table *graph.NodeTable) ([]graph.NodeID, error) {
	var seeds []graph.NodeID
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		id, ok := table.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown node %q", name)
		}
		seeds = append(seeds, id)
	}
	return seeds, nil
}

// loadSummaries reads previously saved summaries; exact selects the kind.
func loadSummaries(path string, exact bool) interface{} {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if exact {
		s, err := core.ReadExactSummaries(f)
		if err != nil {
			fatal(err)
		}
		return s
	}
	s, err := core.ReadApproxSummaries(f)
	if err != nil {
		fatal(err)
	}
	return s
}

// saveSummaries writes summaries (either kind) to path.
func saveSummaries(path string, s io.WriterTo) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	n, err := s.WriteTo(f)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "irs: saved %d summary bytes to %s\n", n, path)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "irs: %v\n", err)
	os.Exit(1)
}
