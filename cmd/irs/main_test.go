package main

import (
	"testing"

	"ipin/internal/graph"
)

func TestParseSeeds(t *testing.T) {
	table := graph.NewNodeTable()
	a := table.Intern("alice")
	b := table.Intern("bob")

	seeds, err := parseSeeds("alice,bob", table)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 2 || seeds[0] != a || seeds[1] != b {
		t.Fatalf("seeds = %v", seeds)
	}
	// Whitespace tolerated.
	if _, err := parseSeeds(" alice , bob ", table); err != nil {
		t.Fatal(err)
	}
	if _, err := parseSeeds("alice,carol", table); err == nil {
		t.Fatal("unknown seed accepted")
	}
}
