package main

import (
	"bufio"
	"bytes"
	"sort"
	"testing"

	"ipin/internal/gen"
	"ipin/internal/graph"
	"ipin/internal/stream"
)

func TestBuildConfigDataset(t *testing.T) {
	cfg, err := buildConfig("enron", 20, "", 0, 0, 0, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "enron" || cfg.Model != gen.ModelEmail {
		t.Fatalf("cfg = %+v", cfg)
	}
	if _, err := buildConfig("nosuch", 20, "", 0, 0, 0, 0, 0, 0, 0); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestBuildConfigCustom(t *testing.T) {
	cfg, err := buildConfig("", 0, "cascade", 100, 1000, 50000, 7, 1.5, 0.3, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Model != gen.ModelCascade || cfg.Nodes != 100 || cfg.Interactions != 1000 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Seed != 7 || cfg.ZipfS != 1.5 || cfg.BranchMean != 1.1 {
		t.Fatalf("cfg = %+v", cfg)
	}
	for _, model := range []string{"email", "social", "uniform"} {
		if _, err := buildConfig("", 0, model, 10, 100, 1000, 1, 1.5, 0.3, 1.1); err != nil {
			t.Errorf("model %s rejected: %v", model, err)
		}
	}
	if _, err := buildConfig("", 0, "nosuch", 10, 100, 1000, 1, 1.5, 0.3, 1.1); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestCustomConfigGenerates(t *testing.T) {
	cfg, err := buildConfig("", 0, "uniform", 50, 300, 10000, 3, 1.5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 300 {
		t.Fatalf("generated %d interactions", l.Len())
	}
}

func TestStreamLogDeterministicAndBounded(t *testing.T) {
	cfg, err := buildConfig("", 0, "email", 60, 800, 40000, 5, 1.5, 0.3, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	l, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const skew = 9
	var a, b bytes.Buffer
	if err := streamLog(&a, l, 0, skew, 5); err != nil {
		t.Fatal(err)
	}
	if err := streamLog(&b, l, 0, skew, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different streams")
	}
	// A distinct seed must (overwhelmingly) shuffle differently.
	var d bytes.Buffer
	if err := streamLog(&d, l, 0, skew, 6); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), d.Bytes()) {
		t.Fatal("different seeds produced identical shuffles")
	}
	// Every line parses, the multiset of edges is preserved, and no edge
	// is displaced more than skew positions from its sorted slot.
	sorted := append([]graph.Interaction(nil), l.Interactions...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	pos := make(map[graph.Interaction][]int, len(sorted))
	for i, e := range sorted {
		pos[e] = append(pos[e], i)
	}
	sc := bufio.NewScanner(&a)
	i := 0
	for sc.Scan() {
		e, err := stream.ParseEdge(sc.Text())
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		slots := pos[e]
		if len(slots) == 0 {
			t.Fatalf("line %d: edge %+v not in the log", i, e)
		}
		// Any sorted slot of an identical edge within skew suffices.
		ok := false
		for _, s := range slots {
			if s-i <= skew && i-s <= skew {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("line %d: edge %+v displaced beyond skew %d (slots %v)", i, e, skew, slots)
		}
		pos[e] = slots[1:]
		i++
	}
	if i != len(sorted) {
		t.Fatalf("streamed %d of %d edges", i, len(sorted))
	}
}

func TestStreamLogUnskewedIsSorted(t *testing.T) {
	cfg, err := buildConfig("", 0, "uniform", 30, 300, 9000, 2, 1.5, 0.3, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	l, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := streamLog(&out, l, 0, 0, 2); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&out)
	last := graph.Time(-1 << 62)
	n := 0
	for sc.Scan() {
		e, err := stream.ParseEdge(sc.Text())
		if err != nil {
			t.Fatal(err)
		}
		if e.At < last {
			t.Fatalf("line %d: time %d regressed below %d", n, e.At, last)
		}
		last = e.At
		n++
	}
	if n != l.Len() {
		t.Fatalf("streamed %d of %d edges", n, l.Len())
	}
}
