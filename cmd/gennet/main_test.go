package main

import (
	"testing"

	"ipin/internal/gen"
)

func TestBuildConfigDataset(t *testing.T) {
	cfg, err := buildConfig("enron", 20, "", 0, 0, 0, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "enron" || cfg.Model != gen.ModelEmail {
		t.Fatalf("cfg = %+v", cfg)
	}
	if _, err := buildConfig("nosuch", 20, "", 0, 0, 0, 0, 0, 0, 0); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestBuildConfigCustom(t *testing.T) {
	cfg, err := buildConfig("", 0, "cascade", 100, 1000, 50000, 7, 1.5, 0.3, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Model != gen.ModelCascade || cfg.Nodes != 100 || cfg.Interactions != 1000 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Seed != 7 || cfg.ZipfS != 1.5 || cfg.BranchMean != 1.1 {
		t.Fatalf("cfg = %+v", cfg)
	}
	for _, model := range []string{"email", "social", "uniform"} {
		if _, err := buildConfig("", 0, model, 10, 100, 1000, 1, 1.5, 0.3, 1.1); err != nil {
			t.Errorf("model %s rejected: %v", model, err)
		}
	}
	if _, err := buildConfig("", 0, "nosuch", 10, 100, 1000, 1, 1.5, 0.3, 1.1); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestCustomConfigGenerates(t *testing.T) {
	cfg, err := buildConfig("", 0, "uniform", 50, 300, 10000, 3, 1.5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 300 {
		t.Fatalf("generated %d interactions", l.Len())
	}
}
