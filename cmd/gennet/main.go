// Command gennet generates synthetic interaction networks — either one of
// the six Table 2 stand-ins by name or a fully custom configuration — and
// writes them in the text format of internal/graph ("src dst time" lines).
//
// Usage:
//
//	gennet -dataset enron -scale 20 -out enron.txt
//	gennet -model cascade -nodes 10000 -interactions 100000 -span 604800 -out c.txt
//
// With -stream the network is emitted as a live feed instead of a file
// dump: lines flow out in timestamp order at -eps edges per second
// (0 = as fast as possible), optionally disordered by -skew, which
// bounds how many positions an edge may arrive early or late — the
// workload an Ingester's reordering buffer absorbs. The output is
// deterministic for a fixed -seed, so two runs produce the same arrival
// sequence:
//
//	gennet -dataset enron -scale 50 -stream -eps 10000 -skew 16 | nc host 7000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"

	"ipin/internal/gen"
	"ipin/internal/graph"
)

func main() {
	var (
		dataset      = flag.String("dataset", "", "Table 2 dataset name ("+fmt.Sprint(gen.Names())+"); overrides the custom flags")
		scale        = flag.Int("scale", 20, "down-scaling factor for -dataset (1 = paper size)")
		model        = flag.String("model", "email", "custom model: email|social|cascade|uniform")
		nodes        = flag.Int("nodes", 1000, "custom: number of nodes")
		interactions = flag.Int("interactions", 10000, "custom: number of interactions")
		span         = flag.Int64("span", 86400*365, "custom: time span in ticks")
		seed         = flag.Uint64("seed", 1, "custom: RNG seed")
		zipf         = flag.Float64("zipf", 1.4, "custom: Zipf activity exponent (>1)")
		reply        = flag.Float64("reply", 0.4, "custom: reply probability (email model)")
		branch       = flag.Float64("branch", 1.2, "custom: mean branching (cascade model)")
		out          = flag.String("out", "", "output file (default stdout)")
		stream       = flag.Bool("stream", false, "emit as a live feed in timestamp order (see -eps, -skew)")
		eps          = flag.Float64("eps", 0, "stream: target edges per second (0 = unpaced)")
		skew         = flag.Int("skew", 0, "stream: max out-of-order displacement in positions")
	)
	flag.Parse()

	cfg, err := buildConfig(*dataset, *scale, *model, *nodes, *interactions, *span, *seed, *zipf, *reply, *branch)
	if err != nil {
		fatal(err)
	}
	l, err := gen.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *stream {
		if err := streamLog(w, l, *eps, *skew, *seed); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gennet: streamed %d interactions over %d nodes (%s, skew %d)\n",
			l.Len(), l.NumNodes, cfg.Name, *skew)
		return
	}
	if err := graph.WriteLog(w, l, nil); err != nil {
		fatal(err)
	}
	s := graph.ComputeStats(l)
	fmt.Fprintf(os.Stderr, "gennet: wrote %d interactions over %d nodes (%s)\n", l.Len(), l.NumNodes, cfg.Name)
	fmt.Fprintf(os.Stderr, "gennet: %d active sources, %d static edges, repetition %.2fx, max activity %d (median %d), max degree %d\n",
		s.ActiveSources, s.StaticEdges, s.RepetitionRatio, s.MaxOutActivity, s.MedianOutActivity, s.MaxOutDegree)
}

func buildConfig(dataset string, scale int, model string, nodes, interactions int, span int64, seed uint64, zipf, reply, branch float64) (gen.Config, error) {
	if dataset != "" {
		return gen.Dataset(dataset, scale)
	}
	var m gen.Model
	switch model {
	case "email":
		m = gen.ModelEmail
	case "social":
		m = gen.ModelSocial
	case "cascade":
		m = gen.ModelCascade
	case "uniform":
		m = gen.ModelUniform
	default:
		return gen.Config{}, fmt.Errorf("unknown model %q", model)
	}
	return gen.Config{
		Name:         "custom-" + model,
		Model:        m,
		Nodes:        nodes,
		Interactions: interactions,
		SpanTicks:    span,
		Seed:         seed,
		ZipfS:        zipf,
		ReplyProb:    reply,
		BranchMean:   branch,
	}, nil
}

// streamLog emits the log as a live feed: timestamp order, optionally
// disordered by a bounded block shuffle, optionally paced to eps edges
// per second. Determinism: the arrival sequence is a pure function of
// the log and seed (pacing affects timing only), so a consumer can be
// replay-tested against the same feed.
func streamLog(w io.Writer, l *graph.Log, eps float64, skew int, seed uint64) error {
	edges := append([]graph.Interaction(nil), l.Interactions...)
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].At < edges[j].At })
	if skew > 0 {
		// Permuting within blocks of skew+1 bounds every edge's
		// displacement to at most skew positions — the contract an
		// ingester's reorder slack is sized against.
		rng := rand.New(rand.NewSource(int64(seed)))
		for lo := 0; lo < len(edges); lo += skew + 1 {
			hi := min(lo+skew+1, len(edges))
			rng.Shuffle(hi-lo, func(i, j int) {
				edges[lo+i], edges[lo+j] = edges[lo+j], edges[lo+i]
			})
		}
	}
	bw := bufio.NewWriter(w)
	var interval time.Duration
	if eps > 0 {
		interval = time.Duration(float64(time.Second) / eps)
	}
	start := time.Now()
	for i, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.Src, e.Dst, e.At); err != nil {
			return err
		}
		if interval > 0 {
			// Paced mode is a live feed: flush per line so consumers see
			// edges as they are emitted, and sleep against the absolute
			// schedule so pacing error does not accumulate.
			if err := bw.Flush(); err != nil {
				return err
			}
			if d := time.Until(start.Add(time.Duration(i+1) * interval)); d > 0 {
				time.Sleep(d)
			}
		}
	}
	return bw.Flush()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gennet: %v\n", err)
	os.Exit(1)
}
