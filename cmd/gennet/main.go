// Command gennet generates synthetic interaction networks — either one of
// the six Table 2 stand-ins by name or a fully custom configuration — and
// writes them in the text format of internal/graph ("src dst time" lines).
//
// Usage:
//
//	gennet -dataset enron -scale 20 -out enron.txt
//	gennet -model cascade -nodes 10000 -interactions 100000 -span 604800 -out c.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"ipin/internal/gen"
	"ipin/internal/graph"
)

func main() {
	var (
		dataset      = flag.String("dataset", "", "Table 2 dataset name ("+fmt.Sprint(gen.Names())+"); overrides the custom flags")
		scale        = flag.Int("scale", 20, "down-scaling factor for -dataset (1 = paper size)")
		model        = flag.String("model", "email", "custom model: email|social|cascade|uniform")
		nodes        = flag.Int("nodes", 1000, "custom: number of nodes")
		interactions = flag.Int("interactions", 10000, "custom: number of interactions")
		span         = flag.Int64("span", 86400*365, "custom: time span in ticks")
		seed         = flag.Uint64("seed", 1, "custom: RNG seed")
		zipf         = flag.Float64("zipf", 1.4, "custom: Zipf activity exponent (>1)")
		reply        = flag.Float64("reply", 0.4, "custom: reply probability (email model)")
		branch       = flag.Float64("branch", 1.2, "custom: mean branching (cascade model)")
		out          = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	cfg, err := buildConfig(*dataset, *scale, *model, *nodes, *interactions, *span, *seed, *zipf, *reply, *branch)
	if err != nil {
		fatal(err)
	}
	l, err := gen.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteLog(w, l, nil); err != nil {
		fatal(err)
	}
	s := graph.ComputeStats(l)
	fmt.Fprintf(os.Stderr, "gennet: wrote %d interactions over %d nodes (%s)\n", l.Len(), l.NumNodes, cfg.Name)
	fmt.Fprintf(os.Stderr, "gennet: %d active sources, %d static edges, repetition %.2fx, max activity %d (median %d), max degree %d\n",
		s.ActiveSources, s.StaticEdges, s.RepetitionRatio, s.MaxOutActivity, s.MedianOutActivity, s.MaxOutDegree)
}

func buildConfig(dataset string, scale int, model string, nodes, interactions int, span int64, seed uint64, zipf, reply, branch float64) (gen.Config, error) {
	if dataset != "" {
		return gen.Dataset(dataset, scale)
	}
	var m gen.Model
	switch model {
	case "email":
		m = gen.ModelEmail
	case "social":
		m = gen.ModelSocial
	case "cascade":
		m = gen.ModelCascade
	case "uniform":
		m = gen.ModelUniform
	default:
		return gen.Config{}, fmt.Errorf("unknown model %q", model)
	}
	return gen.Config{
		Name:         "custom-" + model,
		Model:        m,
		Nodes:        nodes,
		Interactions: interactions,
		SpanTicks:    span,
		Seed:         seed,
		ZipfS:        zipf,
		ReplyProb:    reply,
		BranchMean:   branch,
	}, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gennet: %v\n", err)
	os.Exit(1)
}
