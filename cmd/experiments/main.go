// Command experiments regenerates the tables and figures of the paper's
// evaluation (§6) over the synthetic Table 2 stand-ins (or real datasets
// via -files), printing aligned text tables, ASCII charts for the
// figures, and optionally writing CSVs.
//
// Usage:
//
//	experiments                      # everything at the default scale
//	experiments -exp table3,fig5     # a subset
//	experiments -scale 50 -csv out/  # smaller datasets, CSVs into out/
//	experiments -files data/         # real <name>.txt datasets
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results. The orchestration lives in internal/exp
// (RunSuite); this command only parses flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ipin/internal/exp"
)

func main() {
	def := exp.DefaultSuiteConfig()
	var (
		exps    = flag.String("exp", "all", "comma list: table2,table3,table4,table5,table6,fig3,fig4,fig5,ablation (or all)")
		scale   = flag.Int("scale", def.Scale, "dataset down-scaling factor (1 = paper size)")
		csvDir  = flag.String("csv", "", "directory to write CSV files into (optional)")
		trials  = flag.Int("trials", def.Trials, "TCIC simulation trials per Figure 5 point")
		maxK    = flag.Int("maxk", def.MaxK, "largest seed-set size for Figure 5 / Table 6")
		precBit = flag.Int("precision", def.Precision, "sketch precision (β = 2^precision)")
		files   = flag.String("files", "", "directory with real datasets (<name>.txt) overriding the generators")
		par     = flag.Int("parallelism", 0, "simulation fan-out (0 = GOMAXPROCS)")
		noChart = flag.Bool("nocharts", false, "suppress the ASCII charts")
		report  = flag.String("report", "", "write all tables into one markdown report file")
	)
	flag.Parse()

	cfg := exp.SuiteConfig{
		Scale:       *scale,
		FilesDir:    *files,
		CSVDir:      *csvDir,
		Trials:      *trials,
		MaxK:        *maxK,
		Precision:   *precBit,
		Parallelism: *par,
		Charts:      !*noChart,
		ReportFile:  *report,
		Out:         os.Stdout,
	}
	if *exps != "all" {
		for _, e := range strings.Split(*exps, ",") {
			cfg.Experiments = append(cfg.Experiments, strings.TrimSpace(e))
		}
	}
	if err := exp.RunSuite(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
