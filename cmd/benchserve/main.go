// Command benchserve measures the serving layer (internal/serve) on a
// generated interaction log and writes the results as JSON
// (BENCH_serve.json at the repo root, by convention). It exercises the
// three mechanisms the layer stacks on top of the oracle:
//
//   - result cache: query throughput cold (cache disabled) versus warm
//     (a bounded repeated-seed-set workload served from cached bytes) —
//     the run fails unless the cached path clears -min-speedup;
//   - byte identity: every body in the workload is replayed with the
//     cache on and off and across shard counts and must match exactly;
//   - load shedding: a burst of expensive queries against a tiny
//     admission window, verifying the wait queue stays bounded and the
//     overflow is shed with 429/503 instead of queueing without limit.
//
// Requests drive the exact http.Handler the server mounts (through
// httptest recorders, no sockets), so the numbers include routing, cache
// lookup, computation, and JSON rendering — everything but the kernel's
// network stack.
//
// The report records the host's CPU count and GOMAXPROCS alongside, the
// same convention as BENCH_parallel.json: cached-vs-cold is mostly
// CPU-architecture-independent, but the concurrent sections only show
// contention when the host has real cores to contend on.
//
// Usage:
//
//	benchserve -edges 200000 -queries 5000 -out BENCH_serve.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ipin/internal/core"
	"ipin/internal/gen"
	"ipin/internal/serve"
)

type report struct {
	Edges         int     `json:"edges"`
	Nodes         int     `json:"nodes"`
	OmegaTicks    int64   `json:"omega_ticks"`
	SeedSets      int     `json:"distinct_seed_sets"`
	SeedsPerSet   int     `json:"seeds_per_set"`
	TopkEvery     int     `json:"topk_every"`
	Queries       int     `json:"queries"`
	Clients       int     `json:"clients"`
	NumCPU        int     `json:"num_cpu"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Note          string  `json:"note"`
	ColdQPS       float64 `json:"cold_qps"`
	ColdP50Ms     float64 `json:"cold_p50_ms"`
	ColdP99Ms     float64 `json:"cold_p99_ms"`
	CachedQPS     float64 `json:"cached_qps"`
	CachedP50Ms   float64 `json:"cached_p50_ms"`
	CachedP99Ms   float64 `json:"cached_p99_ms"`
	CacheSpeedup  float64 `json:"cache_speedup"`
	BytesIdentity bool    `json:"bytes_identical_across_configs"`
	Overload      struct {
		Requests     int   `json:"requests"`
		MaxInflight  int   `json:"max_inflight"`
		QueueDepth   int   `json:"queue_depth"`
		OK           int   `json:"ok_200"`
		Shed429      int   `json:"shed_429"`
		Shed503      int   `json:"shed_503"`
		PeakQueueObs int64 `json:"peak_queue_depth_observed"`
	} `json:"overload"`
}

func main() {
	var (
		edges      = flag.Int("edges", 200_000, "interactions in the generated log")
		nodes      = flag.Int("nodes", 20_000, "nodes in the generated log")
		window     = flag.Float64("window", 1, "window as % of the time span")
		queries    = flag.Int("queries", 5_000, "queries per throughput phase")
		seedSets   = flag.Int("seed-sets", 64, "distinct seed sets in the workload (cache working set)")
		seedsPer   = flag.Int("seeds-per-set", 32, "seeds per set")
		topkEvery  = flag.Int("topk-every", 16, "every Nth workload slot is a small /topk query (0 disables)")
		clients    = flag.Int("clients", 2*runtime.GOMAXPROCS(0), "concurrent client goroutines")
		minSpeedup = flag.Float64("min-speedup", 5, "fail unless cached/cold QPS ratio reaches this")
		out        = flag.String("out", "BENCH_serve.json", "output JSON path")
	)
	flag.Parse()

	l, err := gen.Generate(gen.Config{
		Name:         "benchserve",
		Model:        gen.ModelUniform,
		Nodes:        *nodes,
		Interactions: *edges,
		SpanTicks:    int64(*edges) * 4,
		Seed:         1,
	})
	if err != nil {
		fatal(err)
	}
	omega := l.WindowFromPercent(*window)
	sum, err := core.ComputeApprox(l, omega, core.DefaultPrecision)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchserve: %d nodes, %d interactions, ω=%d (NumCPU=%d)\n",
		l.NumNodes, l.Len(), omega, runtime.NumCPU())

	// The workload: /spread over a bounded set of distinct seed sets, with
	// every topk-every-th slot a small /topk — the shape a dashboard or an
	// A/B harness produces. Repeats dominate, so the cache can do its job;
	// the /topk slots are where it pays most, because greedy selection
	// recomputed per query is orders of magnitude above a cache hit.
	// Deterministic (seeded generator elsewhere, plain arithmetic here) so
	// every configuration sees the same paths.
	paths := make([]string, *seedSets)
	for i := range paths {
		if *topkEvery > 0 && i%*topkEvery == *topkEvery-1 {
			paths[i] = fmt.Sprintf("/topk?k=%d", 2+i%7)
			continue
		}
		seeds := make([]string, *seedsPer)
		for j := range seeds {
			seeds[j] = fmt.Sprint((i*7919 + j*104729) % l.NumNodes)
		}
		paths[i] = "/spread?seeds=" + join(seeds)
	}

	rep := report{
		Edges:       l.Len(),
		Nodes:       l.NumNodes,
		OmegaTicks:  omega,
		SeedSets:    *seedSets,
		SeedsPerSet: *seedsPer,
		TopkEvery:   *topkEvery,
		Queries:     *queries,
		Clients:     *clients,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Note: "workload mixes repeated /spread seed sets with small /topk queries; cold = cache disabled (every query recomputes); cached = LRU over rendered " +
			"bodies with the same workload; identical bodies verified across cache on/off and shards 1/4",
	}

	newServer := func(cacheSize, shards int) *serve.Server {
		s := serve.New(serve.Config{Shards: shards, CacheSize: cacheSize, MaxInflight: -1})
		s.LoadApprox(sum)
		return s
	}

	// Phase 1: cold vs cached throughput on the same handler shape.
	cold := newServer(0, serve.DefaultShards)
	coldD, coldLat := drive(cold.Handler(), paths, *queries, *clients)
	cached := newServer(4096, serve.DefaultShards)
	cachedD, cachedLat := drive(cached.Handler(), paths, *queries, *clients)
	rep.ColdQPS = float64(*queries) / coldD.Seconds()
	rep.CachedQPS = float64(*queries) / cachedD.Seconds()
	rep.CacheSpeedup = rep.CachedQPS / rep.ColdQPS
	rep.ColdP50Ms = percentileMs(coldLat, 50)
	rep.ColdP99Ms = percentileMs(coldLat, 99)
	rep.CachedP50Ms = percentileMs(cachedLat, 50)
	rep.CachedP99Ms = percentileMs(cachedLat, 99)
	fmt.Fprintf(os.Stderr, "benchserve: cold %.0f qps (p50 %.2fms p99 %.2fms), cached %.0f qps (p50 %.3fms p99 %.3fms), speedup %.1fx\n",
		rep.ColdQPS, rep.ColdP50Ms, rep.ColdP99Ms, rep.CachedQPS, rep.CachedP50Ms, rep.CachedP99Ms, rep.CacheSpeedup)

	// Phase 2: byte identity. Replay every workload path (plus the other
	// routes) against cache on/off × shards {1,4} and compare bodies.
	checkPaths := append([]string{}, paths...)
	checkPaths = append(checkPaths, "/influence?node=0", "/topk?k=8", "/spreadby?seeds=1,2,3&deadline="+fmt.Sprint(omega), "/stats")
	rep.BytesIdentity = true
	var want []string
	for _, shards := range []int{1, 4} {
		for _, cacheSize := range []int{0, 4096} {
			s := newServer(cacheSize, shards)
			h := s.Handler()
			bodies := make([]string, len(checkPaths))
			for i, p := range checkPaths {
				code, body := hit(h, http.MethodGet, p)
				if code != http.StatusOK {
					fatal(fmt.Errorf("identity check: %s -> %d %s", p, code, body))
				}
				bodies[i] = body
			}
			if want == nil {
				want = bodies
				continue
			}
			for i := range bodies {
				if bodies[i] != want[i] {
					rep.BytesIdentity = false
					fmt.Fprintf(os.Stderr, "benchserve: MISMATCH shards=%d cache=%d %s:\n  %q\n  %q\n",
						shards, cacheSize, checkPaths[i], bodies[i], want[i])
				}
			}
		}
	}
	fmt.Fprintf(os.Stderr, "benchserve: byte identity across configs: %v\n", rep.BytesIdentity)

	// Phase 3: overload. Expensive /topk queries (distinct k values, so
	// neither the cache nor single-flight absorbs them) against a tiny
	// admission window: most of the burst must shed, not queue.
	const maxInflight, queueDepth = 2, 4
	over := serve.New(serve.Config{
		CacheSize:      0,
		MaxInflight:    maxInflight,
		QueueDepth:     queueDepth,
		RequestTimeout: 200 * time.Millisecond,
	})
	over.LoadApprox(sum)
	oh := over.Handler()
	burst := 4 * (*clients) * (maxInflight + queueDepth)
	var ok200, shed429, shed503 atomic.Int64
	var peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := 2 + i%64
			if d := over.QueueDepthNow(); d > peak.Load() {
				peak.Store(d) // racy max, observational only; the hard bound is asserted below
			}
			code, _ := hit(oh, http.MethodGet, fmt.Sprintf("/topk?k=%d", k))
			switch code {
			case http.StatusOK:
				ok200.Add(1)
			case http.StatusTooManyRequests:
				shed429.Add(1)
			case http.StatusServiceUnavailable:
				shed503.Add(1)
			default:
				fatal(fmt.Errorf("overload: unexpected status %d", code))
			}
		}(i)
	}
	wg.Wait()
	rep.Overload.Requests = burst
	rep.Overload.MaxInflight = maxInflight
	rep.Overload.QueueDepth = queueDepth
	rep.Overload.OK = int(ok200.Load())
	rep.Overload.Shed429 = int(shed429.Load())
	rep.Overload.Shed503 = int(shed503.Load())
	rep.Overload.PeakQueueObs = peak.Load()
	fmt.Fprintf(os.Stderr, "benchserve: overload %d requests -> %d ok, %d shed 429, %d shed 503 (peak queue %d)\n",
		burst, rep.Overload.OK, rep.Overload.Shed429, rep.Overload.Shed503, rep.Overload.PeakQueueObs)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := writeJSON(f, rep); err != nil {
		fatal(err)
	}
	f.Close()
	fmt.Fprintf(os.Stderr, "benchserve: wrote %s\n", *out)

	switch {
	case !rep.BytesIdentity:
		fatal(fmt.Errorf("response bodies diverged across cache/shard configurations"))
	case rep.CacheSpeedup < *minSpeedup:
		fatal(fmt.Errorf("cache speedup %.2fx below the %.1fx floor", rep.CacheSpeedup, *minSpeedup))
	case rep.Overload.Shed429 == 0:
		fatal(fmt.Errorf("overload burst produced no 429s: queue not bounded"))
	case rep.Overload.PeakQueueObs > queueDepth:
		fatal(fmt.Errorf("observed queue depth %d exceeds the %d bound", rep.Overload.PeakQueueObs, queueDepth))
	}
}

// drive replays total queries round-robin over paths from clients
// concurrent goroutines and returns the wall-clock duration plus the
// per-request latencies (one entry per query, order unspecified).
func drive(h http.Handler, paths []string, total, clients int) (time.Duration, []time.Duration) {
	lat := make([]time.Duration, total)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				t0 := time.Now()
				code, body := hit(h, http.MethodGet, paths[i%len(paths)])
				lat[i] = time.Since(t0)
				if code != http.StatusOK {
					fatal(fmt.Errorf("drive: %s -> %d %s", paths[i%len(paths)], code, body))
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(start), lat
}

// percentileMs returns the p-th percentile of the latencies in
// milliseconds (nearest-rank on the sorted copy).
func percentileMs(lat []time.Duration, p int) float64 {
	s := append([]time.Duration{}, lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := len(s) * p / 100
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return float64(s[idx]) / float64(time.Millisecond)
}

// hit performs one in-process request against the handler.
func hit(h http.Handler, method, path string) (int, string) {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
	return rec.Code, rec.Body.String()
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}

func writeJSON(f *os.File, v any) error {
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchserve: %v\n", err)
	os.Exit(1)
}
