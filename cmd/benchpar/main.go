// Command benchpar measures the time-sliced parallel IRS pipeline against
// the sequential one on a generated interaction log and writes the
// results as JSON (BENCH_parallel.json at the repo root, by convention).
//
// The report records the host's CPU count and GOMAXPROCS alongside every
// timing: the parallel path can only beat the sequential one when the
// hardware actually has spare cores, and the JSON is meant to be read
// with that column in view. Every parallel phase is also checked against
// the sequential output (byte-identical summaries), so the run doubles as
// an end-to-end identity check at scale.
//
// Usage:
//
//	benchpar -edges 1000000 -workers 4 -out BENCH_parallel.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"ipin/internal/core"
	"ipin/internal/gen"
	"ipin/internal/graph"
)

type phase struct {
	Name       string  `json:"name"`
	Sequential float64 `json:"sequential_seconds"`
	Parallel   float64 `json:"parallel_seconds"`
	Speedup    float64 `json:"speedup"`
	Identical  bool    `json:"identical_output"`
}

type report struct {
	Edges      int    `json:"edges"`
	Nodes      int    `json:"nodes"`
	OmegaTicks int64  `json:"omega_ticks"`
	Workers    int    `json:"workers"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Note       string `json:"note"`
	// ApproxEdgesPerSec is the sequential approx scan's sustained rate —
	// the raw-speed number the -min-approx-eps floor gates in CI.
	ApproxEdgesPerSec float64 `json:"approx_edges_per_sec"`
	Phases            []phase `json:"phases"`
}

func main() {
	var (
		edges   = flag.Int("edges", 1_000_000, "interactions in the generated log")
		nodes   = flag.Int("nodes", 50_000, "nodes in the generated log")
		workers = flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS)")
		window  = flag.Float64("window", 1, "window as % of the time span")
		out     = flag.String("out", "BENCH_parallel.json", "output JSON path")
		minEPS  = flag.Float64("min-approx-eps", 0, "fail unless the sequential approx scan sustains at least this many edges/sec (0 = no gate)")
	)
	flag.Parse()
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}

	l, err := gen.Generate(gen.Config{
		Name:         "benchpar",
		Model:        gen.ModelUniform,
		Nodes:        *nodes,
		Interactions: *edges,
		SpanTicks:    int64(*edges) * 4,
		Seed:         1,
	})
	if err != nil {
		fatal(err)
	}
	omega := l.WindowFromPercent(*window)
	fmt.Fprintf(os.Stderr, "benchpar: %d nodes, %d interactions, ω=%d, workers=%d (NumCPU=%d)\n",
		l.NumNodes, l.Len(), omega, w, runtime.NumCPU())

	rep := report{
		Edges:      l.Len(),
		Nodes:      l.NumNodes,
		OmegaTicks: omega,
		Workers:    w,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "speedup is bounded by min(workers, num_cpu); on a single-CPU host " +
			"the parallel path degenerates to sequential plus coordination overhead",
	}

	// Exact scan.
	t0 := time.Now()
	seqExact := core.ComputeExact(l, omega)
	seqExactD := time.Since(t0)
	t0 = time.Now()
	parExact := core.ComputeExactParallel(l, omega, w)
	parExactD := time.Since(t0)
	rep.Phases = append(rep.Phases, mkPhase("scan/exact", seqExactD, parExactD,
		sameBytes(seqExact, parExact)))

	// Approx scan.
	t0 = time.Now()
	seqApprox, err := core.ComputeApprox(l, omega, core.DefaultPrecision)
	if err != nil {
		fatal(err)
	}
	seqApproxD := time.Since(t0)
	t0 = time.Now()
	parApprox, err := core.ComputeApproxParallel(l, omega, core.DefaultPrecision, w)
	if err != nil {
		fatal(err)
	}
	parApproxD := time.Since(t0)
	rep.Phases = append(rep.Phases, mkPhase("scan/approx", seqApproxD, parApproxD,
		sameBytes(seqApprox, parApprox)))
	rep.ApproxEdgesPerSec = float64(l.Len()) / seqApproxD.Seconds()

	// Oracle collapse.
	core.SetParallelism(1)
	t0 = time.Now()
	seqOracle := core.NewApproxOracle(seqApprox)
	seqCollapseD := time.Since(t0)
	core.SetParallelism(w)
	t0 = time.Now()
	parOracle := core.NewApproxOracle(parApprox)
	parCollapseD := time.Since(t0)

	// Spread over every node (the tree-merge union path).
	seeds := make([]graph.NodeID, l.NumNodes)
	for i := range seeds {
		seeds[i] = graph.NodeID(i)
	}
	core.SetParallelism(1)
	t0 = time.Now()
	seqSpread := seqOracle.Spread(seeds)
	seqSpreadD := time.Since(t0)
	core.SetParallelism(w)
	t0 = time.Now()
	parSpread := parOracle.Spread(seeds)
	parSpreadD := time.Since(t0)
	rep.Phases = append(rep.Phases, mkPhase("oracle/collapse", seqCollapseD, parCollapseD, true))
	rep.Phases = append(rep.Phases, mkPhase("oracle/spread-all", seqSpreadD, parSpreadD,
		seqSpread == parSpread))

	// Seed selection (the parallel first-round gain evaluation).
	const k = 16
	core.SetParallelism(1)
	t0 = time.Now()
	seqSeeds := core.TopKApproxSeeds(seqApprox, k)
	seqSelectD := time.Since(t0)
	core.SetParallelism(w)
	t0 = time.Now()
	parSeeds := core.TopKApproxSeeds(parApprox, k)
	parSelectD := time.Since(t0)
	core.SetParallelism(0)
	same := len(seqSeeds) == len(parSeeds)
	for i := range seqSeeds {
		if !same || seqSeeds[i] != parSeeds[i] {
			same = false
			break
		}
	}
	rep.Phases = append(rep.Phases, mkPhase("select/topk-approx", seqSelectD, parSelectD, same))

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	f.Close()
	broken := false
	for _, p := range rep.Phases {
		fmt.Fprintf(os.Stderr, "benchpar: %-20s seq %.2fs par %.2fs speedup %.2fx identical=%v\n",
			p.Name, p.Sequential, p.Parallel, p.Speedup, p.Identical)
		broken = broken || !p.Identical
	}
	fmt.Fprintf(os.Stderr, "benchpar: approx scan %.0f edges/sec sequential\n", rep.ApproxEdgesPerSec)
	fmt.Fprintf(os.Stderr, "benchpar: wrote %s\n", *out)
	if broken {
		fatal(fmt.Errorf("parallel output diverged from sequential (see identical_output above)"))
	}
	if *minEPS > 0 && rep.ApproxEdgesPerSec < *minEPS {
		fatal(fmt.Errorf("approx scan sustained %.0f edges/sec, below the %.0f floor", rep.ApproxEdgesPerSec, *minEPS))
	}
}

func mkPhase(name string, seq, par time.Duration, identical bool) phase {
	return phase{
		Name:       name,
		Sequential: seq.Seconds(),
		Parallel:   par.Seconds(),
		Speedup:    seq.Seconds() / par.Seconds(),
		Identical:  identical,
	}
}

// sameBytes compares two summary sets by their canonical encodings.
func sameBytes(a, b io.WriterTo) bool {
	var ba, bb bytes.Buffer
	if _, err := a.WriteTo(&ba); err != nil {
		fatal(err)
	}
	if _, err := b.WriteTo(&bb); err != nil {
		fatal(err)
	}
	return bytes.Equal(ba.Bytes(), bb.Bytes())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchpar: %v\n", err)
	os.Exit(1)
}
